// Package als is the public facade of the timing-driven approximate logic
// synthesis framework (DATE 2025, "Timing-driven Approximate Logic
// Synthesis Based on Double-chase Grey Wolf Optimizer").
//
// The full flow mirrors the paper's Fig. 2:
//
//  1. Circuit representation — a gate-level netlist stored as gate fan-in
//     adjacency lists (package internal/netlist), read from structural
//     Verilog or produced by the built-in benchmark generators.
//  2. DCGWO — the double-chase grey wolf optimizer explores LACs under an
//     ER or NMED constraint, optimizing critical-path depth and area
//     simultaneously (package internal/core). The baselines of the
//     paper's tables are available through the same entry point.
//  3. Post-optimization — dangling-gate deletion and gate resizing under
//     an area constraint convert area savings into further critical-path
//     delay reduction (package internal/sizing).
//
// A three-line quickstart:
//
//	circuit := als.Benchmark("Adder16")
//	res, _ := als.Flow(circuit, als.NewLibrary(), als.FlowConfig{
//		Metric: als.MetricNMED, ErrorBudget: 0.0244})
//	fmt.Printf("Ratio_cpd = %.4f\n", res.RatioCPD)
//
// The session API (v2) is the preferred entry point for new code: it
// configures a run with functional options (so legal zero values like
// WithDepthWeight(0) are expressible), streams the run as an event
// sequence, and returns the optimizer's whole delay/error/area trade-off
// front rather than only the single best solution:
//
//	sess, _ := als.NewSession(circuit, als.NewLibrary(),
//		als.WithMetric(als.MetricNMED), als.WithErrorBudget(0.0244))
//	res, front, _ := sess.Collect(ctx)
//
// Flow and FlowContext are thin shims over the same engine and stay
// bit-identical to sessions at the same effective configuration and
// seed; see NewSession, Session.Run, Option and Front.
package als

import (
	"context"
	"fmt"
	"strings"
	"time"

	"repro/internal/baselines"
	"repro/internal/cell"
	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/netlist"
	"repro/internal/verilog"
)

// Metric selects the constrained error measure (ER or NMED).
type Metric = core.Metric

// Re-exported metric constants.
const (
	// MetricER constrains the error rate (random/control circuits).
	MetricER = core.MetricER
	// MetricNMED constrains the normalized mean error distance
	// (arithmetic circuits).
	MetricNMED = core.MetricNMED
)

// Method selects the optimizer driving step 2 of the flow.
type Method uint8

const (
	// MethodDCGWO is the paper's contribution (default).
	MethodDCGWO Method = iota
	// MethodVecbeeSasimi is the area-driven greedy baseline.
	MethodVecbeeSasimi
	// MethodVaACS is the genetic depth-driven baseline.
	MethodVaACS
	// MethodHEDALS is the delay-driven greedy baseline.
	MethodHEDALS
	// MethodSingleChaseGWO is the traditional grey wolf optimizer.
	MethodSingleChaseGWO
)

// String names the method as in the paper's tables.
func (m Method) String() string {
	switch m {
	case MethodDCGWO:
		return "Ours"
	case MethodVecbeeSasimi:
		return baselines.VecbeeSasimi.String()
	case MethodVaACS:
		return baselines.VaACS.String()
	case MethodHEDALS:
		return baselines.HEDALS.String()
	case MethodSingleChaseGWO:
		return baselines.SingleChaseGWO.String()
	}
	return fmt.Sprintf("Method(%d)", uint8(m))
}

// AllMethods lists every optimizer in the tables' column order.
func AllMethods() []Method {
	return []Method{MethodVecbeeSasimi, MethodVaACS, MethodHEDALS, MethodSingleChaseGWO, MethodDCGWO}
}

// methodAliases maps accepted lower-cased spellings onto the canonical
// Method, beyond the lower-cased paper-table names ("ours", "hedals",
// "vecbee-s", "vaacs", "gwo (single-chase)") that ParseMethod always
// accepts. The service API parses untrusted client input through
// ParseMethod, so the common informal spellings are accepted too.
var methodAliases = map[string]Method{
	"dcgwo":            MethodDCGWO,
	"vecbee-sasimi":    MethodVecbeeSasimi,
	"sasimi":           MethodVecbeeSasimi,
	"gwo":              MethodSingleChaseGWO,
	"single-chase-gwo": MethodSingleChaseGWO,
	"singlechasegwo":   MethodSingleChaseGWO,
}

// ParseMethod inverts Method.String: it maps a paper-table method name
// (e.g. "Ours", "HEDALS") back to the Method. The experiment job store
// persists methods by name, not by enum value, so stored results stay
// valid even if the Method constants are ever renumbered. Matching is
// case-insensitive and accepts common aliases ("dcgwo", "sasimi",
// "single-chase-gwo"), since the serving API parses untrusted input
// through here; canonical spellings remain the Method.String values.
func ParseMethod(name string) (Method, error) {
	folded := strings.ToLower(strings.TrimSpace(name))
	for _, m := range AllMethods() {
		if strings.ToLower(m.String()) == folded {
			return m, nil
		}
	}
	if m, ok := methodAliases[folded]; ok {
		return m, nil
	}
	return 0, fmt.Errorf("als: unknown method %q", name)
}

// ParseMetric maps a metric name ("ER" or "NMED", case-insensitively)
// back to the Metric.
func ParseMetric(name string) (Metric, error) {
	switch strings.ToLower(strings.TrimSpace(name)) {
	case "er":
		return MetricER, nil
	case "nmed":
		return MetricNMED, nil
	}
	return 0, fmt.Errorf("als: unknown metric %q", name)
}

// Scale presets the run budget.
type Scale uint8

const (
	// ScaleQuick targets seconds per benchmark (CI, tests, go test
	// -bench): smaller population, fewer iterations, fewer vectors.
	ScaleQuick Scale = iota
	// ScalePaper uses the paper's parameters (N=30, Imax=20) and a large
	// Monte-Carlo sample.
	ScalePaper
)

// String names the scale preset ("quick" or "paper").
func (s Scale) String() string {
	switch s {
	case ScaleQuick:
		return "quick"
	case ScalePaper:
		return "paper"
	}
	return fmt.Sprintf("Scale(%d)", uint8(s))
}

// ParseScale inverts Scale.String, case-insensitively.
func ParseScale(name string) (Scale, error) {
	switch strings.ToLower(strings.TrimSpace(name)) {
	case "quick":
		return ScaleQuick, nil
	case "paper":
		return ScalePaper, nil
	}
	return 0, fmt.Errorf("als: unknown scale %q", name)
}

// FlowConfig configures one end-to-end run.
type FlowConfig struct {
	// Metric and ErrorBudget set the error constraint.
	Metric      core.Metric
	ErrorBudget float64
	// Method picks the optimizer; zero value is DCGWO.
	Method Method
	// Scale presets population/iterations/vectors; individual overrides
	// below win when non-zero.
	Scale Scale
	// AreaConRatio scales the post-optimization area constraint relative
	// to the accurate circuit's area (paper Fig. 8 sweeps 0.8-1.2);
	// zero means 1.0 — the paper's TABLE II/III setting Areacon ≈ Areaori.
	AreaConRatio float64
	// DepthWeight overrides wd (zero keeps the paper's 0.8).
	DepthWeight float64
	// Population, Iterations, Vectors override the scale preset.
	Population, Iterations, Vectors int
	// EvalWorkers caps the candidate-evaluation worker pool (0 =
	// GOMAXPROCS). Evaluation is pure, so results are bit-identical at
	// any value; schedulers that run several flows concurrently set it
	// so nested pools don't oversubscribe the machine.
	EvalWorkers int
	// Progress, when non-nil, is invoked once per optimizer iteration
	// (DCGWO) or round (baselines) from the flow's goroutine. It draws no
	// randomness, so installing it never changes results; the alsd
	// service uses it to report live per-job progress.
	Progress func(FlowProgress)
	// Seed fixes all stochastic choices.
	Seed int64
}

// FlowProgress is one live progress report of a running flow.
type FlowProgress struct {
	// Iter counts completed optimizer iterations; Total is the configured
	// maximum (the run may converge and stop earlier).
	Iter, Total int
	// BestRatioCPD is the best individual's delay so far over CPDori —
	// an upper bound on the final RatioCPD, which post-optimization can
	// only improve.
	BestRatioCPD float64
	// BestErr is the best individual's error under the configured metric.
	BestErr float64
	// Evaluations counts circuit evaluations so far.
	Evaluations int
}

// resolve maps every zero value onto the paper default. It shares the
// sessionConfig defaults table (with no explicit-set flags raised), so
// the v1 shims and option-built sessions can never drift apart.
func (f FlowConfig) resolve() FlowConfig {
	return sessionConfig{cfg: f}.resolved()
}

// FlowResult reports one end-to-end run in the units of the paper's
// tables.
type FlowResult struct {
	// Circuit names the design.
	Circuit string
	// Method names the optimizer.
	Method Method
	// CPDOri and AreaOri describe the accurate circuit.
	CPDOri, AreaOri float64
	// CPDFac is the final critical path delay after post-optimization.
	CPDFac float64
	// RatioCPD = CPDFac / CPDOri — the paper's headline metric.
	RatioCPD float64
	// AreaCon is the post-optimization area budget; AreaFinal the result.
	AreaCon, AreaFinal float64
	// Err is the best individual's error under the configured metric.
	Err float64
	// Runtime is the wall-clock optimization + post-optimization time.
	Runtime time.Duration
	// Evaluations counts circuit evaluations.
	Evaluations int
	// Approx is the optimizer's best netlist before post-optimization;
	// Final is the compacted, resized netlist.
	Approx, Final *netlist.Circuit
	// History is DCGWO's convergence trace (nil for baselines).
	History []core.IterStats
	// Cache reports the evaluation cache's effectiveness over the run.
	Cache EvalCacheStats
}

// EvalCacheStats reports how effective the generation-scoped evaluation
// cache was over one run: every optimizer evaluation of a cache-eligible
// candidate counts as a lookup, and hits are candidates answered entirely
// from an earlier identical evaluation of the same generation. The
// counters are observability only — results are bit-identical whether the
// cache hits or not.
type EvalCacheStats struct {
	// Lookups counts cache-eligible candidate evaluations; Hits the ones
	// answered from the whole-candidate memo.
	Lookups, Hits int64
	// UnitHits and UnitMisses count per-change cone-delta lookups on the
	// disjoint-composition path; Composed counts candidates whose metrics
	// were recombined from such deltas.
	UnitHits, UnitMisses, Composed int64
	// Fallbacks counts evaluations that bypassed the cache (candidates
	// outside the accurate circuit's gate ID space).
	Fallbacks int64
	// Generations counts cache resets at optimizer generation boundaries.
	Generations int64
}

// HitRatio returns Hits/Lookups, or 0 before any lookup.
func (s EvalCacheStats) HitRatio() float64 {
	if s.Lookups == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Lookups)
}

func evalCacheStatsFrom(c core.CacheStats) EvalCacheStats {
	return EvalCacheStats{
		Lookups:     c.Lookups,
		Hits:        c.Hits,
		UnitHits:    c.UnitHits,
		UnitMisses:  c.UnitMisses,
		Composed:    c.Composed,
		Fallbacks:   c.Fallbacks,
		Generations: c.Generations,
	}
}

// NewLibrary returns the synthetic 28nm-class cell library.
func NewLibrary() *cell.Library { return cell.Default28nm() }

// Benchmark builds one of the paper's TABLE I circuits by name
// (e.g. "Adder16", "c6288"). It panics on unknown names — a documented
// convenience for examples and benchmarks where the name is a literal;
// code handling untrusted or configured names uses BenchmarkByName.
func Benchmark(name string) *netlist.Circuit { return gen.MustBuild(name) }

// BenchmarkByName builds one of the paper's TABLE I circuits by name,
// returning an error wrapping ErrUnknownBenchmark (with the valid names)
// instead of panicking — the entry point for CLI flags and service
// request validation.
func BenchmarkByName(name string) (*netlist.Circuit, error) {
	b, ok := gen.ByName(name)
	if !ok {
		return nil, fmt.Errorf("%w %q (valid: %s)", ErrUnknownBenchmark, name, strings.Join(gen.Names(), ", "))
	}
	return b.Build(), nil
}

// BenchmarkNames lists the TABLE I circuit names in paper order.
func BenchmarkNames() []string { return gen.Names() }

// ParseVerilog reads a structural-Verilog netlist over the cell library.
func ParseVerilog(src string) (*netlist.Circuit, error) { return verilog.Parse(src) }

// WriteVerilog renders a netlist as structural Verilog.
func WriteVerilog(c *netlist.Circuit) string { return verilog.Write(c) }

// Flow runs the complete three-step framework on an accurate circuit and
// returns the paper's reporting metrics.
func Flow(accurate *netlist.Circuit, lib *cell.Library, cfg FlowConfig) (*FlowResult, error) {
	return FlowContext(context.Background(), accurate, lib, cfg)
}

// FlowContext is Flow with cooperative cancellation: the context is
// checked once per optimizer iteration, and a cancelled flow returns an
// error wrapping ctx.Err(). Cancellation checks draw no randomness, so an
// uncancelled FlowContext run is bit-identical to Flow at the same seed,
// and re-running a cancelled flow reproduces the result the uncancelled
// run would have produced.
//
// Flow and FlowContext are the frozen v1 shims over the session engine
// (runFlow): a FlowConfig resolves its zero values to the paper defaults
// and runs exactly the configuration the equivalent option-built Session
// would, so both entry points are bit-identical at the same seed. New
// code should prefer NewSession, which streams progress and returns the
// whole trade-off front; an infeasible run reports ErrInfeasible.
func FlowContext(ctx context.Context, accurate *netlist.Circuit, lib *cell.Library, cfg FlowConfig) (*FlowResult, error) {
	res, _, err := runFlow(ctx, accurate, lib, cfg.resolve(), runHooks{progress: cfg.Progress})
	return res, err
}
