package als_test

import (
	"strings"
	"testing"

	als "repro"
)

func quickCfg(metric als.Metric, budget float64) als.FlowConfig {
	return als.FlowConfig{
		Metric:      metric,
		ErrorBudget: budget,
		Scale:       als.ScaleQuick,
		Population:  6,
		Iterations:  4,
		Vectors:     1024,
		Seed:        9,
	}
}

func TestFlowEveryMethod(t *testing.T) {
	lib := als.NewLibrary()
	for _, method := range als.AllMethods() {
		method := method
		t.Run(method.String(), func(t *testing.T) {
			t.Parallel()
			cfg := quickCfg(als.MetricER, 0.05)
			cfg.Method = method
			res, err := als.Flow(als.Benchmark("c880"), lib, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if res.RatioCPD <= 0 || res.RatioCPD > 1.2 {
				t.Errorf("implausible Ratio_cpd %v", res.RatioCPD)
			}
			if res.Err > 0.05 {
				t.Errorf("error %v exceeds budget", res.Err)
			}
			if res.AreaFinal > res.AreaCon+1e-9 {
				t.Errorf("final area %v exceeds constraint %v", res.AreaFinal, res.AreaCon)
			}
			if err := res.Final.Validate(); err != nil {
				t.Errorf("final netlist invalid: %v", err)
			}
		})
	}
}

func TestFlowVerilogRoundTrip(t *testing.T) {
	lib := als.NewLibrary()
	res, err := als.Flow(als.Benchmark("Max16"), lib, quickCfg(als.MetricNMED, 0.0244))
	if err != nil {
		t.Fatal(err)
	}
	src := als.WriteVerilog(res.Final)
	back, err := als.ParseVerilog(src)
	if err != nil {
		t.Fatalf("final netlist does not round-trip: %v", err)
	}
	if len(back.POs) != len(res.Final.POs) || len(back.PIs) != len(res.Final.PIs) {
		t.Error("round trip changed the interface")
	}
	if !strings.Contains(src, "module Max16") {
		t.Error("module name lost")
	}
}

func TestFlowDeterministic(t *testing.T) {
	lib := als.NewLibrary()
	run := func() float64 {
		res, err := als.Flow(als.Benchmark("Adder16"), lib, quickCfg(als.MetricNMED, 0.0244))
		if err != nil {
			t.Fatal(err)
		}
		return res.RatioCPD
	}
	if a, b := run(), run(); a != b {
		t.Errorf("same seed, different ratios: %v vs %v", a, b)
	}
}

func TestFlowHistoryOnlyForDCGWO(t *testing.T) {
	lib := als.NewLibrary()
	cfg := quickCfg(als.MetricER, 0.05)
	res, err := als.Flow(als.Benchmark("c880"), lib, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.History) != cfg.Iterations {
		t.Errorf("DCGWO history has %d entries, want %d", len(res.History), cfg.Iterations)
	}
	cfg.Method = als.MethodHEDALS
	res, err = als.Flow(als.Benchmark("c880"), lib, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.History != nil {
		t.Error("baselines have no convergence history")
	}
}

func TestBenchmarkNamesMatchTable1(t *testing.T) {
	names := als.BenchmarkNames()
	if len(names) != 15 {
		t.Fatalf("got %d benchmarks, want 15", len(names))
	}
	if names[0] != "Cavlc" || names[len(names)-1] != "Sqrt" {
		t.Error("benchmark order must follow TABLE I")
	}
}

func TestMethodStrings(t *testing.T) {
	if als.MethodDCGWO.String() != "Ours" {
		t.Error("DCGWO is the paper's 'Ours' column")
	}
	if als.MethodHEDALS.String() != "HEDALS" {
		t.Error("HEDALS name")
	}
}

func TestFlowEvalWorkersDoesNotChangeResults(t *testing.T) {
	lib := als.NewLibrary()
	var ref *als.FlowResult
	for _, w := range []int{0, 1, 3} {
		cfg := quickCfg(als.MetricNMED, 0.0244)
		cfg.Seed = 5
		cfg.EvalWorkers = w
		res, err := als.Flow(als.Benchmark("Adder16"), lib, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if ref == nil {
			ref = res
			continue
		}
		if res.RatioCPD != ref.RatioCPD || res.Err != ref.Err || res.Evaluations != ref.Evaluations {
			t.Fatalf("EvalWorkers=%d changed results: %v/%v/%d vs %v/%v/%d",
				w, res.RatioCPD, res.Err, res.Evaluations, ref.RatioCPD, ref.Err, ref.Evaluations)
		}
	}
}

func TestParseMethodRoundTrip(t *testing.T) {
	for _, m := range als.AllMethods() {
		got, err := als.ParseMethod(m.String())
		if err != nil || got != m {
			t.Errorf("ParseMethod(%q) = %v, %v; want %v", m.String(), got, err, m)
		}
	}
	if _, err := als.ParseMethod("nope"); err == nil {
		t.Error("unknown method name must error")
	}
}

func TestParseMetricRoundTrip(t *testing.T) {
	for _, m := range []als.Metric{als.MetricER, als.MetricNMED} {
		got, err := als.ParseMetric(m.String())
		if err != nil || got != m {
			t.Errorf("ParseMetric(%q) = %v, %v; want %v", m.String(), got, err, m)
		}
	}
	if _, err := als.ParseMetric("MAE"); err == nil {
		t.Error("unknown metric name must error")
	}
}

func TestParseScaleRoundTrip(t *testing.T) {
	for _, s := range []als.Scale{als.ScaleQuick, als.ScalePaper} {
		got, err := als.ParseScale(s.String())
		if err != nil || got != s {
			t.Errorf("ParseScale(%q) = %v, %v; want %v", s.String(), got, err, s)
		}
	}
	if _, err := als.ParseScale("huge"); err == nil {
		t.Error("unknown scale name must error")
	}
}

func TestFlowAreaConstraintSweepMonotone(t *testing.T) {
	lib := als.NewLibrary()
	prev := 10.0
	for _, ratio := range []float64{0.9, 1.0, 1.2} {
		cfg := quickCfg(als.MetricNMED, 0.0244)
		cfg.AreaConRatio = ratio
		res, err := als.Flow(als.Benchmark("Max16"), lib, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if res.AreaFinal > res.AreaCon+1e-9 {
			t.Errorf("ratio %v: area %v exceeds budget %v", ratio, res.AreaFinal, res.AreaCon)
		}
		if res.RatioCPD > prev+0.05 {
			t.Errorf("more area headroom made timing clearly worse at ratio %v", ratio)
		}
		prev = res.RatioCPD
	}
}

// TestParseCaseInsensitive covers the serving-API requirement: method,
// metric and scale names arrive as untrusted client input and must parse
// case-insensitively, with the common informal method spellings accepted
// as aliases of the canonical table names.
func TestParseCaseInsensitive(t *testing.T) {
	methodCases := map[string]als.Method{
		"ours":               als.MethodDCGWO,
		"OURS":               als.MethodDCGWO,
		"dcgwo":              als.MethodDCGWO,
		"DCGWO":              als.MethodDCGWO,
		"hedals":             als.MethodHEDALS,
		"HeDaLs":             als.MethodHEDALS,
		" HEDALS ":           als.MethodHEDALS,
		"vecbee-s":           als.MethodVecbeeSasimi,
		"vecbee-sasimi":      als.MethodVecbeeSasimi,
		"sasimi":             als.MethodVecbeeSasimi,
		"vaacs":              als.MethodVaACS,
		"gwo":                als.MethodSingleChaseGWO,
		"gwo (single-chase)": als.MethodSingleChaseGWO,
		"single-chase-gwo":   als.MethodSingleChaseGWO,
	}
	for name, want := range methodCases {
		if got, err := als.ParseMethod(name); err != nil || got != want {
			t.Errorf("ParseMethod(%q) = %v, %v; want %v", name, got, err, want)
		}
	}
	for _, bad := range []string{"", "annealing", "ours2", "gwo single-chase"} {
		if _, err := als.ParseMethod(bad); err == nil {
			t.Errorf("ParseMethod(%q) must fail", bad)
		}
	}

	for name, want := range map[string]als.Metric{
		"er": als.MetricER, "ER": als.MetricER, "Er": als.MetricER,
		"nmed": als.MetricNMED, "NMED": als.MetricNMED, "NMed ": als.MetricNMED,
	} {
		if got, err := als.ParseMetric(name); err != nil || got != want {
			t.Errorf("ParseMetric(%q) = %v, %v; want %v", name, got, err, want)
		}
	}
	if _, err := als.ParseMetric("mae"); err == nil {
		t.Error("ParseMetric must reject unknown metrics case-insensitively too")
	}

	for name, want := range map[string]als.Scale{
		"quick": als.ScaleQuick, "QUICK": als.ScaleQuick,
		"paper": als.ScalePaper, "Paper": als.ScalePaper,
	} {
		if got, err := als.ParseScale(name); err != nil || got != want {
			t.Errorf("ParseScale(%q) = %v, %v; want %v", name, got, err, want)
		}
	}
	if _, err := als.ParseScale("huge"); err == nil {
		t.Error("ParseScale must reject unknown scales")
	}
}
