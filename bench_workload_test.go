// Shared benchmark workload: every committed engine bench (perf_bench_test.go)
// and the end-to-end flow bench (bench_test.go) derive their shape from the
// constants and helpers here, so `cmd/benchgate`'s committed baselines and
// the benches provably measure the same workload — the constants cannot
// drift apart silently because there is exactly one copy.
package als_test

import (
	"math/rand"
	"testing"

	als "repro"
	"repro/internal/netlist"
)

// The committed bench family's workload shape. testdata/bench_baseline.json
// records numbers measured at exactly this shape; change these only
// together with a baseline regeneration (`cmd/benchgate -update`).
const (
	// benchWorkloadCircuit is the TABLE I design every bench mutates.
	benchWorkloadCircuit = "Adder16"
	// benchWorkloadVectors is the Monte-Carlo sample size.
	benchWorkloadVectors = 2048
	// benchWorkloadLACs is how many LACs each candidate accumulates.
	benchWorkloadLACs = 2
	// benchWorkloadBatch is the EvaluateBatch population slice size.
	benchWorkloadBatch = 16
	// benchWorkloadSeed fixes every stochastic choice.
	benchWorkloadSeed = 1
	// benchWorkloadNMED is BenchmarkFlowSingle's error budget (the paper's
	// TABLE III constraint).
	benchWorkloadNMED = 0.0244
	// benchWorkloadPop and benchWorkloadIters are BenchmarkFlowSingle's
	// quick optimizer budget.
	benchWorkloadPop   = 8
	benchWorkloadIters = 6
)

// benchBase returns the constant-materialized workload circuit every
// candidate derives from.
func benchBase(b *testing.B) *netlist.Circuit {
	b.Helper()
	base := als.Benchmark(benchWorkloadCircuit).Clone()
	base.Const0()
	base.Const1()
	if err := base.Validate(); err != nil {
		b.Fatal(err)
	}
	return base
}

// benchLAC applies one loop-safe rewire: a random live physical gate's
// consumers switch to a random TFI gate or constant.
func benchLAC(c *netlist.Circuit, rng *rand.Rand) {
	live := c.Live()
	var phys []int
	for id, g := range c.Gates {
		if live[id] && !g.Func.IsPseudo() {
			phys = append(phys, id)
		}
	}
	target := phys[rng.Intn(len(phys))]
	tfi := c.TFI(target)
	var cands []int
	for id := range c.Gates {
		if tfi[id] && id != target && !c.Gates[id].Func.IsPseudo() {
			cands = append(cands, id)
		}
	}
	if len(cands) == 0 {
		c.ReplaceFanin(target, c.Const0())
		return
	}
	c.ReplaceFanin(target, cands[rng.Intn(len(cands))])
}

// benchCandidates builds n independent candidates, each base mutated by
// `lacs` random rewires, from a fixed seed.
func benchCandidates(b *testing.B, base *netlist.Circuit, n, lacs int) []*netlist.Circuit {
	b.Helper()
	rng := rand.New(rand.NewSource(benchWorkloadSeed))
	out := make([]*netlist.Circuit, n)
	for i := range out {
		c := base.Clone()
		for k := 0; k < lacs; k++ {
			benchLAC(c, rng)
		}
		out[i] = c
	}
	return out
}

// poPortLAC rewires PO port k to read PI (k mod nPI) directly: the only
// gate that differs from base is the PO port itself, whose fanout cone is
// empty, so two such changes on distinct POs have provably disjoint cones.
func poPortLAC(c *netlist.Circuit, k int) {
	po := c.POs[k]
	c.SetFanin(po, 0, c.PIs[k%len(c.PIs)])
}

// benchSharedCandidates builds a population slice with the redundancy a
// real generation exhibits: `n` candidates cycling through n/4 distinct
// change sets (whole-candidate reuse) where each distinct candidate
// carries two PO-port rewires on a disjoint PO pair (per-change delta
// composition). Every duplicate is a separate Clone — distinct circuits
// with equal content, exactly what elitism and converged populations
// produce.
func benchSharedCandidates(b *testing.B, base *netlist.Circuit, n int) []*netlist.Circuit {
	b.Helper()
	distinct := n / 4
	if distinct < 1 {
		distinct = 1
	}
	out := make([]*netlist.Circuit, n)
	for i := range out {
		c := base.Clone()
		v := i % distinct
		poPortLAC(c, 2*v)
		poPortLAC(c, 2*v+1)
		out[i] = c
	}
	return out
}
