package als

import "errors"

// Sentinel errors of the public API. Callers branch on them with
// errors.Is — never by matching error prose, which stays free to carry
// human-readable context (budgets, valid-name lists, …). The HTTP service
// layer maps them onto structured /v2 error codes the same way.
var (
	// ErrInfeasible reports that a flow found no approximate circuit
	// meeting the error budget. It cannot occur under the default
	// optimizers when the budget is non-negative (the accurate circuit
	// itself, at zero error, is always a feasible fallback), but the
	// sentinel keeps the contract explicit for future optimizers that may
	// start from an infeasible point.
	ErrInfeasible = errors.New("als: no feasible approximate circuit under the error budget")

	// ErrUnknownBenchmark reports a benchmark name outside the paper's
	// TABLE I set; BenchmarkByName returns it wrapped with the offending
	// name and the valid names.
	ErrUnknownBenchmark = errors.New("als: unknown benchmark")

	// ErrSessionConsumed reports a second Run on a Session. A Session is
	// single-shot: its stream, result and front describe exactly one flow
	// execution. Build a new Session (same circuit, same options) to run
	// again — at the same seed it reproduces the first run bit-exactly.
	ErrSessionConsumed = errors.New("als: session already run")
)
