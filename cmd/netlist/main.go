// Command netlist is a utility for the benchmark netlists: generate them
// as structural Verilog, print TABLE I-style statistics, or run a timing
// report.
//
// Usage:
//
//	netlist gen -bench c6288 -out c6288.v
//	netlist stats -bench Sqrt
//	netlist sta -in design.v -paths 3
package main

import (
	"flag"
	"fmt"
	"os"

	als "repro"
	"repro/internal/netlist"
	"repro/internal/sta"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "gen":
		cmdGen(os.Args[2:])
	case "stats":
		cmdStats(os.Args[2:])
	case "sta":
		cmdSTA(os.Args[2:])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: netlist <gen|stats|sta> [flags]")
	os.Exit(2)
}

func load(bench, in string) *netlist.Circuit {
	switch {
	case bench != "":
		return als.Benchmark(bench)
	case in != "":
		src, err := os.ReadFile(in)
		if err != nil {
			fatal(err)
		}
		c, err := als.ParseVerilog(string(src))
		if err != nil {
			fatal(err)
		}
		return c
	}
	fatal(fmt.Errorf("pass -bench <name> or -in <file.v>"))
	return nil
}

func cmdGen(args []string) {
	fs := flag.NewFlagSet("gen", flag.ExitOnError)
	bench := fs.String("bench", "", "benchmark name")
	out := fs.String("out", "", "output .v path (default stdout)")
	fs.Parse(args)
	c := load(*bench, "")
	src := als.WriteVerilog(c)
	if *out == "" {
		fmt.Print(src)
		return
	}
	if err := os.WriteFile(*out, []byte(src), 0o644); err != nil {
		fatal(err)
	}
}

func cmdStats(args []string) {
	fs := flag.NewFlagSet("stats", flag.ExitOnError)
	bench := fs.String("bench", "", "benchmark name")
	in := fs.String("in", "", "input .v")
	fs.Parse(args)
	c := load(*bench, *in)
	lib := als.NewLibrary()
	s := c.Summarize(lib)
	rep, err := sta.Analyze(c, lib)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("name   : %s\n", s.Name)
	fmt.Printf("gates  : %d\n", s.Gates)
	fmt.Printf("PI/PO  : %d/%d\n", s.PIs, s.POs)
	fmt.Printf("CPD    : %.2f ps (depth %d levels)\n", rep.CPD, rep.MaxDepth)
	fmt.Printf("area   : %.2f um2\n", s.Area)
}

func cmdSTA(args []string) {
	fs := flag.NewFlagSet("sta", flag.ExitOnError)
	bench := fs.String("bench", "", "benchmark name")
	in := fs.String("in", "", "input .v")
	paths := fs.Int("paths", 1, "report the worst path of the slowest N POs")
	fs.Parse(args)
	c := load(*bench, *in)
	lib := als.NewLibrary()
	rep, err := sta.Analyze(c, lib)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("CPD %.2f ps, logic depth %d\n", rep.CPD, rep.MaxDepth)

	// Rank POs by arrival.
	type poArr struct {
		idx int
		ta  float64
	}
	order := make([]poArr, len(c.POs))
	for i := range c.POs {
		order[i] = poArr{i, rep.POArrival[i]}
	}
	for i := 0; i < len(order); i++ {
		for j := i + 1; j < len(order); j++ {
			if order[j].ta > order[i].ta {
				order[i], order[j] = order[j], order[i]
			}
		}
	}
	if *paths > len(order) {
		*paths = len(order)
	}
	for k := 0; k < *paths; k++ {
		po := order[k]
		fmt.Printf("\npath to PO %q (Ta = %.2f ps):\n", c.Gates[c.POs[po.idx]].Name, po.ta)
		for _, id := range rep.CriticalPathForPO(c, po.idx) {
			g := c.Gates[id]
			fmt.Printf("  %6d  %-8s arr %8.2f  delay %6.2f  load %5.2f\n",
				id, g.Func.String()+g.Drive.String(), rep.Arrival[id], rep.Delay[id], rep.Load[id])
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "netlist:", err)
	os.Exit(1)
}
