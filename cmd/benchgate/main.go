// Command benchgate turns `go test -bench` output into a machine-readable
// summary and gates CI on a committed baseline: it reads benchmark output
// on stdin, takes the best (minimum) ns/op per benchmark across -count
// repetitions — the least-noise estimator on shared runners — writes the
// summary JSON (the BENCH_ci.json workflow artifact), and exits 1 when ANY
// baseline benchmark regressed beyond its allowed fraction. Every bench in
// the baseline is gated; failures are collected, not short-circuited.
//
// Usage:
//
//	go test -run='^$' -bench='^(BenchmarkFlowSingle|...)$' -count=5 . |
//	    go run ./cmd/benchgate -baseline testdata/bench_baseline.json -out BENCH_ci.json
//
// After an intentional performance change (or on a new reference machine),
// regenerate the baseline with the recipe in the baseline file itself —
// per-bench regression allowances are preserved across -update.
//
// The committed bench history is maintained with the same tool:
// `-record FILE -label L` appends one JSONL entry holding this run's
// per-bench minima, and `-history FILE -history-out MD` renders the whole
// trajectory as a markdown table (BENCH_history.md).
//
// Exit codes: 0 pass, 1 regression or missing data, 2 usage error.
package main

import (
	"bufio"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Summary is the machine-readable digest of one bench run (the CI
// artifact). NsPerOp holds the minimum across repetitions; Runs counts
// how many repetitions fed each minimum.
type Summary struct {
	NsPerOp map[string]float64 `json:"ns_per_op"`
	Runs    map[string]int     `json:"runs"`
}

// BenchSpec is one benchmark's committed reference point: its baseline
// ns/op and the relative regression its gate allows.
type BenchSpec struct {
	NsPerOp    float64 `json:"ns_per_op"`
	MaxRegress float64 `json:"max_regress"`
}

// Baseline is the committed reference (testdata/bench_baseline.json).
// Every benchmark listed here is gated on every CI run.
type Baseline struct {
	// Recipe documents how to regenerate the file.
	Recipe  string               `json:"_recipe"`
	Benches map[string]BenchSpec `json:"benches"`
}

// HistoryEntry is one line of the JSONL bench history: a labeled snapshot
// of the per-bench minima at one point in the repo's trajectory.
type HistoryEntry struct {
	Label   string             `json:"label"`
	Date    string             `json:"date"`
	NsPerOp map[string]float64 `json:"ns_per_op"`
}

// baselineRecipe is written into updated baselines.
const baselineRecipe = "go test -run='^$' -bench='^(BenchmarkFlowSingle|BenchmarkSimRunIncremental|BenchmarkEvaluateBatch|BenchmarkEvaluateBatchShared)$' -count=5 . | go run ./cmd/benchgate -update testdata/bench_baseline.json"

// defaultMaxRegress is the gate allowance for benches whose baseline entry
// does not carry one yet.
const defaultMaxRegress = 0.25

// benchLine matches one `go test -bench` result line, e.g.
//
//	BenchmarkFlowSingle-8   	     226	   5136224 ns/op
//
// The -8 GOMAXPROCS suffix is stripped so summaries compare across
// machines with different core counts.
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+([0-9.]+) ns/op`)

// parseBench aggregates bench output into a Summary.
func parseBench(r io.Reader) (Summary, error) {
	s := Summary{NsPerOp: map[string]float64{}, Runs: map[string]int{}}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<22)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		ns, err := strconv.ParseFloat(m[2], 64)
		if err != nil {
			return s, fmt.Errorf("benchgate: bad ns/op in %q: %w", sc.Text(), err)
		}
		name := m[1]
		if prev, ok := s.NsPerOp[name]; !ok || ns < prev {
			s.NsPerOp[name] = ns
		}
		s.Runs[name]++
	}
	return s, sc.Err()
}

// gateOne checks one benchmark of the summary against its baseline spec,
// returning a human-readable verdict.
func gateOne(s Summary, name string, spec BenchSpec) (string, error) {
	got, ok := s.NsPerOp[name]
	if !ok {
		return "", fmt.Errorf("benchgate: %s missing from the bench output (names: %s)", name, strings.Join(names(s.NsPerOp), ", "))
	}
	maxRegress := spec.MaxRegress
	if maxRegress <= 0 {
		maxRegress = defaultMaxRegress
	}
	limit := spec.NsPerOp * (1 + maxRegress)
	delta := (got - spec.NsPerOp) / spec.NsPerOp * 100
	verdict := fmt.Sprintf("%s: %.0f ns/op vs baseline %.0f ns/op (%+.1f%%, limit +%.0f%%)",
		name, got, spec.NsPerOp, delta, maxRegress*100)
	if got > limit {
		return "", fmt.Errorf("benchgate: REGRESSION %s", verdict)
	}
	return verdict, nil
}

// gateAll gates every baseline benchmark, collecting all verdicts and all
// failures (a regression in one bench must not hide another's).
func gateAll(s Summary, b Baseline) (verdicts []string, failures []error) {
	for _, name := range benchNames(b.Benches) {
		v, err := gateOne(s, name, b.Benches[name])
		if err != nil {
			failures = append(failures, err)
			continue
		}
		verdicts = append(verdicts, v)
	}
	return verdicts, failures
}

func names(m map[string]float64) []string {
	var out []string
	for n := range m {
		out = append(out, n)
	}
	sort.Strings(out)
	if len(out) == 0 {
		return []string{"(none)"}
	}
	return out
}

func benchNames(m map[string]BenchSpec) []string {
	out := make([]string, 0, len(m))
	for n := range m {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// readBaseline loads a committed baseline file.
func readBaseline(path string) (Baseline, error) {
	var b Baseline
	raw, err := os.ReadFile(path)
	if err != nil {
		return b, fmt.Errorf("benchgate: %w", err)
	}
	if err := json.Unmarshal(raw, &b); err != nil {
		return b, fmt.Errorf("benchgate: baseline %s: %w", path, err)
	}
	if len(b.Benches) == 0 {
		return b, fmt.Errorf("benchgate: baseline %s lists no benches", path)
	}
	return b, nil
}

// updateBaseline writes the summary as a new baseline, preserving each
// existing bench's regression allowance (a tightened gate must survive a
// number refresh).
func updateBaseline(path string, s Summary) (Baseline, error) {
	prev := map[string]BenchSpec{}
	if old, err := readBaseline(path); err == nil {
		prev = old.Benches
	}
	b := Baseline{Recipe: baselineRecipe, Benches: map[string]BenchSpec{}}
	for name, ns := range s.NsPerOp {
		spec := BenchSpec{NsPerOp: ns, MaxRegress: defaultMaxRegress}
		if p, ok := prev[name]; ok && p.MaxRegress > 0 {
			spec.MaxRegress = p.MaxRegress
		}
		b.Benches[name] = spec
	}
	return b, writeJSON(path, b)
}

// appendHistory appends one labeled JSONL entry with the run's minima.
func appendHistory(path, label string, s Summary) error {
	entry := HistoryEntry{Label: label, Date: time.Now().UTC().Format("2006-01-02"), NsPerOp: s.NsPerOp}
	raw, err := json.Marshal(entry)
	if err != nil {
		return fmt.Errorf("benchgate: %w", err)
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("benchgate: %w", err)
	}
	defer f.Close()
	if _, err := f.Write(append(raw, '\n')); err != nil {
		return fmt.Errorf("benchgate: %w", err)
	}
	return f.Close()
}

// readHistory parses a JSONL history file in entry order.
func readHistory(path string) ([]HistoryEntry, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("benchgate: %w", err)
	}
	var out []HistoryEntry
	sc := bufio.NewScanner(strings.NewReader(string(raw)))
	sc.Buffer(make([]byte, 0, 1<<16), 1<<22)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		var e HistoryEntry
		if err := json.Unmarshal([]byte(line), &e); err != nil {
			return nil, fmt.Errorf("benchgate: history %s: %w", path, err)
		}
		out = append(out, e)
	}
	return out, sc.Err()
}

// renderHistory turns the history into a markdown table, one row per
// entry, one column per benchmark ever recorded (missing cells dashed).
func renderHistory(entries []HistoryEntry) string {
	cols := map[string]bool{}
	for _, e := range entries {
		for name := range e.NsPerOp {
			cols[name] = true
		}
	}
	var benches []string
	for n := range cols {
		benches = append(benches, n)
	}
	sort.Strings(benches)

	var sb strings.Builder
	sb.WriteString("# Bench history\n\n")
	sb.WriteString("Per-PR trajectory of the committed bench family: minimum ns/op across\n")
	sb.WriteString("`-count` repetitions on the reference machine, one row per recorded run.\n")
	sb.WriteString("Regenerate with:\n\n")
	sb.WriteString("    go run ./cmd/benchgate -history testdata/bench_history.jsonl -history-out BENCH_history.md\n\n")
	sb.WriteString("Append a new row after a perf-relevant change with:\n\n")
	sb.WriteString("    go test -run='^$' -bench='...' -count=5 . | go run ./cmd/benchgate -record testdata/bench_history.jsonl -label <pr>\n\n")
	sb.WriteString("| label | date |")
	for _, b := range benches {
		fmt.Fprintf(&sb, " %s |", strings.TrimPrefix(b, "Benchmark"))
	}
	sb.WriteString("\n|---|---|")
	for range benches {
		sb.WriteString("---|")
	}
	sb.WriteString("\n")
	for _, e := range entries {
		fmt.Fprintf(&sb, "| %s | %s |", e.Label, e.Date)
		for _, b := range benches {
			if ns, ok := e.NsPerOp[b]; ok {
				fmt.Fprintf(&sb, " %.0f |", ns)
			} else {
				sb.WriteString(" — |")
			}
		}
		sb.WriteString("\n")
	}
	return sb.String()
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdin, os.Stderr))
}

func run(args []string, stdin io.Reader, stderr io.Writer) int {
	fs := flag.NewFlagSet("benchgate", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		baselinePath = fs.String("baseline", "", "committed baseline JSON; every bench listed there is gated")
		outPath      = fs.String("out", "", "write the parsed summary JSON here (the CI artifact)")
		updatePath   = fs.String("update", "", "write stdin's results as a new baseline to this path and exit")
		recordPath   = fs.String("record", "", "append stdin's results as one JSONL history entry to this file")
		labelFlag    = fs.String("label", "", "history entry label (e.g. the PR), required with -record")
		historyPath  = fs.String("history", "", "JSONL history file to render as markdown")
		historyOut   = fs.String("history-out", "", "write the rendered markdown here, required with -history")
	)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0
		}
		return 2
	}
	needStdin := *updatePath != "" || *baselinePath != "" || *outPath != "" || *recordPath != ""
	if !needStdin && *historyPath == "" {
		fmt.Fprintln(stderr, "benchgate: nothing to do: need -baseline, -out, -update, -record or -history")
		return 2
	}
	if *recordPath != "" && *labelFlag == "" {
		fmt.Fprintln(stderr, "benchgate: -record requires -label")
		return 2
	}
	if (*historyPath == "") != (*historyOut == "") {
		fmt.Fprintln(stderr, "benchgate: -history and -history-out must be used together")
		return 2
	}

	var summary Summary
	if needStdin {
		var err error
		summary, err = parseBench(stdin)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		if len(summary.NsPerOp) == 0 {
			fmt.Fprintln(stderr, "benchgate: no benchmark lines found on stdin")
			return 1
		}
	}

	if *updatePath != "" {
		b, err := updateBaseline(*updatePath, summary)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		fmt.Fprintf(stderr, "benchgate: wrote baseline for %d benchmark(s) to %s\n", len(b.Benches), *updatePath)
		return 0
	}

	if *outPath != "" {
		if err := writeJSON(*outPath, summary); err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
	}
	if *recordPath != "" {
		if err := appendHistory(*recordPath, *labelFlag, summary); err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		fmt.Fprintf(stderr, "benchgate: recorded %q in %s\n", *labelFlag, *recordPath)
	}
	failed := false
	if *baselinePath != "" {
		baseline, err := readBaseline(*baselinePath)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		verdicts, failures := gateAll(summary, baseline)
		for _, v := range verdicts {
			fmt.Fprintf(stderr, "benchgate: PASS %s\n", v)
		}
		for _, err := range failures {
			fmt.Fprintln(stderr, err)
		}
		if len(failures) > 0 {
			fmt.Fprintf(stderr, "benchgate: %d of %d gated benchmark(s) failed; after an intentional change, regenerate with: %s\n",
				len(failures), len(baseline.Benches), baselineRecipe)
			failed = true
		}
	}
	if *historyPath != "" {
		entries, err := readHistory(*historyPath)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		if err := os.WriteFile(*historyOut, []byte(renderHistory(entries)), 0o644); err != nil {
			fmt.Fprintln(stderr, fmt.Errorf("benchgate: %w", err))
			return 1
		}
		fmt.Fprintf(stderr, "benchgate: rendered %d history entr(ies) to %s\n", len(entries), *historyOut)
	}
	if failed {
		return 1
	}
	return 0
}

func writeJSON(path string, v any) error {
	raw, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return fmt.Errorf("benchgate: %w", err)
	}
	return os.WriteFile(path, append(raw, '\n'), 0o644)
}
