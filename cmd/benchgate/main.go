// Command benchgate turns `go test -bench` output into a machine-readable
// summary and gates CI on a committed baseline: it reads benchmark output
// on stdin, takes the best (minimum) ns/op per benchmark across -count
// repetitions — the least-noise estimator on shared runners — writes the
// summary JSON (the BENCH_ci.json workflow artifact), and exits 1 when the
// gated benchmark regressed beyond the allowed fraction.
//
// Usage:
//
//	go test -run='^$' -bench='^(BenchmarkFlowSingle|...)$' -count=5 . |
//	    go run ./cmd/benchgate -baseline testdata/bench_baseline.json -out BENCH_ci.json
//
// After an intentional performance change (or on a new reference machine),
// regenerate the baseline with:
//
//	go test -run='^$' -bench='^(BenchmarkFlowSingle|BenchmarkSimRunIncremental|BenchmarkEvaluateBatch)$' -count=5 . |
//	    go run ./cmd/benchgate -update testdata/bench_baseline.json
//
// Exit codes: 0 pass, 1 regression or missing data, 2 usage error.
package main

import (
	"bufio"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Summary is the machine-readable digest of one bench run (the CI
// artifact). NsPerOp holds the minimum across repetitions; Runs counts
// how many repetitions fed each minimum.
type Summary struct {
	NsPerOp map[string]float64 `json:"ns_per_op"`
	Runs    map[string]int     `json:"runs"`
}

// Baseline is the committed reference (testdata/bench_baseline.json).
type Baseline struct {
	// Recipe documents how to regenerate the file.
	Recipe  string             `json:"_recipe"`
	NsPerOp map[string]float64 `json:"ns_per_op"`
}

// baselineRecipe is written into updated baselines.
const baselineRecipe = "go test -run='^$' -bench='^(BenchmarkFlowSingle|BenchmarkSimRunIncremental|BenchmarkEvaluateBatch)$' -count=5 . | go run ./cmd/benchgate -update testdata/bench_baseline.json"

// benchLine matches one `go test -bench` result line, e.g.
//
//	BenchmarkFlowSingle-8   	     226	   5136224 ns/op
//
// The -8 GOMAXPROCS suffix is stripped so summaries compare across
// machines with different core counts.
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+([0-9.]+) ns/op`)

// parseBench aggregates bench output into a Summary.
func parseBench(r io.Reader) (Summary, error) {
	s := Summary{NsPerOp: map[string]float64{}, Runs: map[string]int{}}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<22)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		ns, err := strconv.ParseFloat(m[2], 64)
		if err != nil {
			return s, fmt.Errorf("benchgate: bad ns/op in %q: %w", sc.Text(), err)
		}
		name := m[1]
		if prev, ok := s.NsPerOp[name]; !ok || ns < prev {
			s.NsPerOp[name] = ns
		}
		s.Runs[name]++
	}
	return s, sc.Err()
}

// gate checks one benchmark of the summary against the baseline with a
// relative regression allowance, returning a human-readable verdict.
func gate(s Summary, b Baseline, name string, maxRegress float64) (string, error) {
	got, ok := s.NsPerOp[name]
	if !ok {
		return "", fmt.Errorf("benchgate: %s missing from the bench output (names: %s)", name, strings.Join(names(s.NsPerOp), ", "))
	}
	base, ok := b.NsPerOp[name]
	if !ok {
		return "", fmt.Errorf("benchgate: %s missing from the baseline (names: %s)", name, strings.Join(names(b.NsPerOp), ", "))
	}
	limit := base * (1 + maxRegress)
	delta := (got - base) / base * 100
	verdict := fmt.Sprintf("%s: %.0f ns/op vs baseline %.0f ns/op (%+.1f%%, limit +%.0f%%)",
		name, got, base, delta, maxRegress*100)
	if got > limit {
		return "", fmt.Errorf("benchgate: REGRESSION %s", verdict)
	}
	return verdict, nil
}

func names(m map[string]float64) []string {
	var out []string
	for n := range m {
		out = append(out, n)
	}
	sort.Strings(out)
	if len(out) == 0 {
		return []string{"(none)"}
	}
	return out
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdin, os.Stderr))
}

func run(args []string, stdin io.Reader, stderr io.Writer) int {
	fs := flag.NewFlagSet("benchgate", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		baselinePath = fs.String("baseline", "", "committed baseline JSON to gate against")
		outPath      = fs.String("out", "", "write the parsed summary JSON here (the CI artifact)")
		gateName     = fs.String("gate", "BenchmarkFlowSingle", "benchmark the regression gate applies to")
		maxRegress   = fs.Float64("max-regress", 0.25, "allowed relative ns/op regression before failing")
		updatePath   = fs.String("update", "", "write stdin's results as a new baseline to this path and exit")
	)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0
		}
		return 2
	}
	if *updatePath == "" && *baselinePath == "" && *outPath == "" {
		fmt.Fprintln(stderr, "benchgate: nothing to do: need -baseline, -out or -update")
		return 2
	}

	summary, err := parseBench(stdin)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	if len(summary.NsPerOp) == 0 {
		fmt.Fprintln(stderr, "benchgate: no benchmark lines found on stdin")
		return 1
	}

	if *updatePath != "" {
		b := Baseline{Recipe: baselineRecipe, NsPerOp: summary.NsPerOp}
		if err := writeJSON(*updatePath, b); err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		fmt.Fprintf(stderr, "benchgate: wrote baseline for %d benchmark(s) to %s\n", len(b.NsPerOp), *updatePath)
		return 0
	}

	if *outPath != "" {
		if err := writeJSON(*outPath, summary); err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
	}
	if *baselinePath != "" {
		raw, err := os.ReadFile(*baselinePath)
		if err != nil {
			fmt.Fprintln(stderr, fmt.Errorf("benchgate: %w", err))
			return 1
		}
		var baseline Baseline
		if err := json.Unmarshal(raw, &baseline); err != nil {
			fmt.Fprintln(stderr, fmt.Errorf("benchgate: baseline %s: %w", *baselinePath, err))
			return 1
		}
		verdict, err := gate(summary, baseline, *gateName, *maxRegress)
		if err != nil {
			fmt.Fprintln(stderr, err)
			fmt.Fprintf(stderr, "benchgate: after an intentional change, regenerate with: %s\n", baselineRecipe)
			return 1
		}
		fmt.Fprintf(stderr, "benchgate: PASS %s\n", verdict)
	}
	return 0
}

func writeJSON(path string, v any) error {
	raw, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return fmt.Errorf("benchgate: %w", err)
	}
	return os.WriteFile(path, append(raw, '\n'), 0o644)
}
