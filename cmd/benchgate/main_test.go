package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// sampleOutput is a realistic -count=3 bench transcript, including noise
// lines parseBench must skip and a second benchmark.
const sampleOutput = `goos: linux
goarch: amd64
pkg: repro
cpu: some CPU @ 3.00GHz
BenchmarkFlowSingle-8   	     226	   5136224 ns/op
BenchmarkFlowSingle-8   	     230	   5101833 ns/op
BenchmarkFlowSingle-8   	     228	   5240012 ns/op
BenchmarkSimRunIncremental-8   	  410000	      2913 ns/op
BenchmarkSimRunIncremental-8   	  402000	      2950.5 ns/op
PASS
ok  	repro	12.3s
`

func TestParseBenchTakesMinAcrossRepetitions(t *testing.T) {
	s, err := parseBench(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	if got := s.NsPerOp["BenchmarkFlowSingle"]; got != 5101833 {
		t.Fatalf("FlowSingle min = %v, want 5101833", got)
	}
	if got := s.Runs["BenchmarkFlowSingle"]; got != 3 {
		t.Fatalf("FlowSingle runs = %d, want 3", got)
	}
	if got := s.NsPerOp["BenchmarkSimRunIncremental"]; got != 2913 {
		t.Fatalf("SimRunIncremental min = %v, want 2913 (suffix stripped, fractional parsed)", got)
	}
	if len(s.NsPerOp) != 2 {
		t.Fatalf("parsed %d benchmarks, want 2: %+v", len(s.NsPerOp), s.NsPerOp)
	}
}

func TestGateVerdicts(t *testing.T) {
	s := Summary{NsPerOp: map[string]float64{"BenchmarkFlowSingle": 1200}}
	b := Baseline{NsPerOp: map[string]float64{"BenchmarkFlowSingle": 1000}}

	// +20% under a 25% allowance passes.
	if _, err := gate(s, b, "BenchmarkFlowSingle", 0.25); err != nil {
		t.Fatalf("+20%% must pass a 25%% gate: %v", err)
	}
	// +20% over a 10% allowance fails and names the numbers.
	_, err := gate(s, b, "BenchmarkFlowSingle", 0.10)
	if err == nil || !strings.Contains(err.Error(), "REGRESSION") {
		t.Fatalf("+20%% must fail a 10%% gate: %v", err)
	}
	if !strings.Contains(err.Error(), "1200") || !strings.Contains(err.Error(), "1000") {
		t.Fatalf("verdict must carry got and baseline ns/op: %v", err)
	}
	// Missing from output / baseline are errors, not silent passes.
	if _, err := gate(Summary{NsPerOp: map[string]float64{}}, b, "BenchmarkFlowSingle", 0.25); err == nil {
		t.Fatal("missing benchmark in output must error")
	}
	if _, err := gate(s, Baseline{}, "BenchmarkFlowSingle", 0.25); err == nil {
		t.Fatal("missing benchmark in baseline must error")
	}
}

func TestRunEndToEndGateAndArtifact(t *testing.T) {
	dir := t.TempDir()
	baseline := filepath.Join(dir, "baseline.json")
	artifact := filepath.Join(dir, "BENCH_ci.json")

	// -update writes a baseline with the recipe header.
	var errb strings.Builder
	code := run([]string{"-update", baseline}, strings.NewReader(sampleOutput), &errb)
	if code != 0 {
		t.Fatalf("-update: code=%d stderr=%q", code, errb.String())
	}
	raw, err := os.ReadFile(baseline)
	if err != nil {
		t.Fatal(err)
	}
	var b Baseline
	if err := json.Unmarshal(raw, &b); err != nil {
		t.Fatal(err)
	}
	if b.Recipe == "" || b.NsPerOp["BenchmarkFlowSingle"] != 5101833 {
		t.Fatalf("baseline malformed: %+v", b)
	}

	// Same output against its own baseline passes and emits the artifact.
	errb.Reset()
	code = run([]string{"-baseline", baseline, "-out", artifact}, strings.NewReader(sampleOutput), &errb)
	if code != 0 || !strings.Contains(errb.String(), "PASS") {
		t.Fatalf("self-check: code=%d stderr=%q", code, errb.String())
	}
	var s Summary
	raw, err = os.ReadFile(artifact)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(raw, &s); err != nil {
		t.Fatal(err)
	}
	if s.NsPerOp["BenchmarkFlowSingle"] != 5101833 {
		t.Fatalf("artifact malformed: %+v", s)
	}

	// A 2x slowdown fails the gate with exit 1 but still writes the
	// artifact for the workflow upload.
	slow := strings.ReplaceAll(sampleOutput, "5136224 ns/op", "11136224 ns/op")
	slow = strings.ReplaceAll(slow, "5101833 ns/op", "11101833 ns/op")
	slow = strings.ReplaceAll(slow, "5240012 ns/op", "11240012 ns/op")
	errb.Reset()
	code = run([]string{"-baseline", baseline, "-out", artifact}, strings.NewReader(slow), &errb)
	if code != 1 || !strings.Contains(errb.String(), "REGRESSION") {
		t.Fatalf("2x slowdown: code=%d stderr=%q", code, errb.String())
	}
	if _, err := os.Stat(artifact); err != nil {
		t.Fatalf("artifact must exist even on failure: %v", err)
	}

	// Usage errors exit 2.
	if code := run(nil, strings.NewReader(""), &errb); code != 2 {
		t.Fatalf("no flags: code=%d, want 2", code)
	}
	// Empty input exits 1.
	if code := run([]string{"-out", artifact}, strings.NewReader("no benches here"), &errb); code != 1 {
		t.Fatalf("empty input: code=%d, want 1", code)
	}
}
