package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// sampleOutput is a realistic -count=3 bench transcript, including noise
// lines parseBench must skip and a second benchmark.
const sampleOutput = `goos: linux
goarch: amd64
pkg: repro
cpu: some CPU @ 3.00GHz
BenchmarkFlowSingle-8   	     226	   5136224 ns/op
BenchmarkFlowSingle-8   	     230	   5101833 ns/op
BenchmarkFlowSingle-8   	     228	   5240012 ns/op
BenchmarkSimRunIncremental-8   	  410000	      2913 ns/op
BenchmarkSimRunIncremental-8   	  402000	      2950.5 ns/op
PASS
ok  	repro	12.3s
`

func TestParseBenchTakesMinAcrossRepetitions(t *testing.T) {
	s, err := parseBench(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	if got := s.NsPerOp["BenchmarkFlowSingle"]; got != 5101833 {
		t.Fatalf("FlowSingle min = %v, want 5101833", got)
	}
	if got := s.Runs["BenchmarkFlowSingle"]; got != 3 {
		t.Fatalf("FlowSingle runs = %d, want 3", got)
	}
	if got := s.NsPerOp["BenchmarkSimRunIncremental"]; got != 2913 {
		t.Fatalf("SimRunIncremental min = %v, want 2913 (suffix stripped, fractional parsed)", got)
	}
	if len(s.NsPerOp) != 2 {
		t.Fatalf("parsed %d benchmarks, want 2: %+v", len(s.NsPerOp), s.NsPerOp)
	}
}

func TestGateOneVerdicts(t *testing.T) {
	s := Summary{NsPerOp: map[string]float64{"BenchmarkFlowSingle": 1200}}

	// +20% under a 25% allowance passes.
	if _, err := gateOne(s, "BenchmarkFlowSingle", BenchSpec{NsPerOp: 1000, MaxRegress: 0.25}); err != nil {
		t.Fatalf("+20%% must pass a 25%% gate: %v", err)
	}
	// +20% over a 10% allowance fails and names the numbers.
	_, err := gateOne(s, "BenchmarkFlowSingle", BenchSpec{NsPerOp: 1000, MaxRegress: 0.10})
	if err == nil || !strings.Contains(err.Error(), "REGRESSION") {
		t.Fatalf("+20%% must fail a 10%% gate: %v", err)
	}
	if !strings.Contains(err.Error(), "1200") || !strings.Contains(err.Error(), "1000") {
		t.Fatalf("verdict must carry got and baseline ns/op: %v", err)
	}
	// A zero allowance in the spec falls back to the default (25%).
	if _, err := gateOne(s, "BenchmarkFlowSingle", BenchSpec{NsPerOp: 1000}); err != nil {
		t.Fatalf("+20%% must pass the default gate: %v", err)
	}
	// Missing from the output is an error, not a silent pass.
	if _, err := gateOne(Summary{NsPerOp: map[string]float64{}}, "BenchmarkFlowSingle", BenchSpec{NsPerOp: 1000}); err == nil {
		t.Fatal("missing benchmark in output must error")
	}
}

func TestGateAllCollectsEveryFailure(t *testing.T) {
	s := Summary{NsPerOp: map[string]float64{
		"BenchmarkA": 2000, // 2x regression
		"BenchmarkB": 1000, // exact match
		// BenchmarkC missing from the output entirely
	}}
	b := Baseline{Benches: map[string]BenchSpec{
		"BenchmarkA": {NsPerOp: 1000, MaxRegress: 0.25},
		"BenchmarkB": {NsPerOp: 1000, MaxRegress: 0.25},
		"BenchmarkC": {NsPerOp: 1000, MaxRegress: 0.25},
	}}
	verdicts, failures := gateAll(s, b)
	if len(verdicts) != 1 || !strings.Contains(verdicts[0], "BenchmarkB") {
		t.Fatalf("verdicts = %v, want only BenchmarkB", verdicts)
	}
	if len(failures) != 2 {
		t.Fatalf("failures = %v, want the regression AND the missing bench", failures)
	}
}

func TestRunEndToEndGateAndArtifact(t *testing.T) {
	dir := t.TempDir()
	baseline := filepath.Join(dir, "baseline.json")
	artifact := filepath.Join(dir, "BENCH_ci.json")

	// -update writes a baseline with the recipe header and default
	// per-bench allowances.
	var errb strings.Builder
	code := run([]string{"-update", baseline}, strings.NewReader(sampleOutput), &errb)
	if code != 0 {
		t.Fatalf("-update: code=%d stderr=%q", code, errb.String())
	}
	raw, err := os.ReadFile(baseline)
	if err != nil {
		t.Fatal(err)
	}
	var b Baseline
	if err := json.Unmarshal(raw, &b); err != nil {
		t.Fatal(err)
	}
	if b.Recipe == "" || b.Benches["BenchmarkFlowSingle"].NsPerOp != 5101833 {
		t.Fatalf("baseline malformed: %+v", b)
	}
	if b.Benches["BenchmarkFlowSingle"].MaxRegress != defaultMaxRegress {
		t.Fatalf("fresh baseline must carry the default allowance: %+v", b)
	}

	// A second -update preserves a hand-tightened allowance.
	b.Benches["BenchmarkFlowSingle"] = BenchSpec{NsPerOp: 1, MaxRegress: 0.10}
	tightened, err := json.Marshal(b)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(baseline, tightened, 0o644); err != nil {
		t.Fatal(err)
	}
	errb.Reset()
	if code := run([]string{"-update", baseline}, strings.NewReader(sampleOutput), &errb); code != 0 {
		t.Fatalf("re-update: code=%d stderr=%q", code, errb.String())
	}
	raw, err = os.ReadFile(baseline)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(raw, &b); err != nil {
		t.Fatal(err)
	}
	if got := b.Benches["BenchmarkFlowSingle"]; got.MaxRegress != 0.10 || got.NsPerOp != 5101833 {
		t.Fatalf("re-update must refresh ns/op but keep the tightened allowance: %+v", got)
	}
	if got := b.Benches["BenchmarkSimRunIncremental"].MaxRegress; got != defaultMaxRegress {
		t.Fatalf("untouched bench must keep the default allowance: %v", got)
	}

	// Same output against its own baseline passes every gate and emits the
	// artifact.
	errb.Reset()
	code = run([]string{"-baseline", baseline, "-out", artifact}, strings.NewReader(sampleOutput), &errb)
	if code != 0 || strings.Count(errb.String(), "PASS") != 2 {
		t.Fatalf("self-check must PASS both benches: code=%d stderr=%q", code, errb.String())
	}
	var s Summary
	raw, err = os.ReadFile(artifact)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(raw, &s); err != nil {
		t.Fatal(err)
	}
	if s.NsPerOp["BenchmarkFlowSingle"] != 5101833 {
		t.Fatalf("artifact malformed: %+v", s)
	}

	// A 2x slowdown of ONE bench fails the gate with exit 1 (while the
	// other still passes) but still writes the artifact for the upload.
	slow := strings.ReplaceAll(sampleOutput, "5136224 ns/op", "11136224 ns/op")
	slow = strings.ReplaceAll(slow, "5101833 ns/op", "11101833 ns/op")
	slow = strings.ReplaceAll(slow, "5240012 ns/op", "11240012 ns/op")
	errb.Reset()
	code = run([]string{"-baseline", baseline, "-out", artifact}, strings.NewReader(slow), &errb)
	if code != 1 || !strings.Contains(errb.String(), "REGRESSION BenchmarkFlowSingle") {
		t.Fatalf("2x slowdown: code=%d stderr=%q", code, errb.String())
	}
	if !strings.Contains(errb.String(), "PASS BenchmarkSimRunIncremental") {
		t.Fatalf("unaffected bench must still report PASS: %q", errb.String())
	}
	if _, err := os.Stat(artifact); err != nil {
		t.Fatalf("artifact must exist even on failure: %v", err)
	}

	// Usage errors exit 2.
	if code := run(nil, strings.NewReader(""), &errb); code != 2 {
		t.Fatalf("no flags: code=%d, want 2", code)
	}
	if code := run([]string{"-record", filepath.Join(dir, "h.jsonl")}, strings.NewReader(sampleOutput), &errb); code != 2 {
		t.Fatalf("-record without -label: code=%d, want 2", code)
	}
	if code := run([]string{"-history", filepath.Join(dir, "h.jsonl")}, strings.NewReader(""), &errb); code != 2 {
		t.Fatalf("-history without -history-out: code=%d, want 2", code)
	}
	// Empty input exits 1.
	if code := run([]string{"-out", artifact}, strings.NewReader("no benches here"), &errb); code != 1 {
		t.Fatalf("empty input: code=%d, want 1", code)
	}
}

func TestRunHistoryRecordAndRender(t *testing.T) {
	dir := t.TempDir()
	history := filepath.Join(dir, "history.jsonl")
	md := filepath.Join(dir, "BENCH_history.md")

	// Two recorded runs accumulate as two JSONL lines.
	var errb strings.Builder
	if code := run([]string{"-record", history, "-label", "pr5"}, strings.NewReader(sampleOutput), &errb); code != 0 {
		t.Fatalf("record pr5: code=%d stderr=%q", code, errb.String())
	}
	faster := strings.ReplaceAll(sampleOutput, "5101833 ns/op", "4101833 ns/op")
	if code := run([]string{"-record", history, "-label", "pr6"}, strings.NewReader(faster), &errb); code != 0 {
		t.Fatalf("record pr6: code=%d stderr=%q", code, errb.String())
	}
	entries, err := readHistory(history)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 || entries[0].Label != "pr5" || entries[1].Label != "pr6" {
		t.Fatalf("history = %+v, want pr5 then pr6", entries)
	}
	if entries[0].Date == "" {
		t.Fatal("history entries must carry a date")
	}
	if entries[1].NsPerOp["BenchmarkFlowSingle"] != 4101833 {
		t.Fatalf("pr6 entry must hold the faster minimum: %+v", entries[1])
	}

	// -history renders one markdown row per entry, columns sorted.
	if code := run([]string{"-history", history, "-history-out", md}, strings.NewReader(""), &errb); code != 0 {
		t.Fatalf("render: code=%d stderr=%q", code, errb.String())
	}
	raw, err := os.ReadFile(md)
	if err != nil {
		t.Fatal(err)
	}
	got := string(raw)
	for _, want := range []string{"| pr5 |", "| pr6 |", "FlowSingle", "SimRunIncremental", "4101833"} {
		if !strings.Contains(got, want) {
			t.Fatalf("rendered history missing %q:\n%s", want, got)
		}
	}
	if strings.Index(got, "| pr5 |") > strings.Index(got, "| pr6 |") {
		t.Fatalf("rows must keep entry order:\n%s", got)
	}
}
