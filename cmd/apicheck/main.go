// Command apicheck freezes a package's exported API surface: it parses
// the package source (no build needed), renders every exported top-level
// declaration — functions, methods with exported receivers, types with
// their exported fields, consts and vars — in a canonical, sorted text
// form, and diffs it against a committed baseline. CI runs it over the
// public als package so an accidental signature change to the frozen v1
// shims (or any other exported name) fails the build with an explicit
// added/removed report; intentional changes regenerate the baseline.
//
// Usage:
//
//	apicheck -dir . -check testdata/api_v1.txt    # gate (exit 1 on drift)
//	apicheck -dir . -update testdata/api_v1.txt   # regenerate baseline
//	apicheck -dir .                               # print surface to stdout
package main

import (
	"flag"
	"fmt"
	"go/ast"
	"go/parser"
	"go/printer"
	"go/token"
	"os"
	"sort"
	"strings"
)

const header = `# Exported API surface, frozen by cmd/apicheck.
# Regenerate after an intentional API change:
#   go run ./cmd/apicheck -dir . -update testdata/api_v1.txt

`

func main() {
	var (
		dir    = flag.String("dir", ".", "package directory to scan")
		check  = flag.String("check", "", "baseline file to diff against; drift exits 1")
		update = flag.String("update", "", "write the current surface to this baseline file")
	)
	flag.Parse()

	surface, err := Surface(*dir)
	if err != nil {
		fmt.Fprintln(os.Stderr, "apicheck:", err)
		os.Exit(2)
	}
	text := header + strings.Join(surface, "\n\n") + "\n"

	switch {
	case *update != "":
		if err := os.WriteFile(*update, []byte(text), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "apicheck:", err)
			os.Exit(2)
		}
		fmt.Printf("apicheck: wrote %d exported declaration(s) to %s\n", len(surface), *update)
	case *check != "":
		raw, err := os.ReadFile(*check)
		if err != nil {
			fmt.Fprintln(os.Stderr, "apicheck:", err)
			os.Exit(2)
		}
		if string(raw) == text {
			fmt.Printf("apicheck: %s matches (%d exported declaration(s))\n", *check, len(surface))
			return
		}
		fmt.Fprintf(os.Stderr, "apicheck: exported surface of %s drifted from %s\n", *dir, *check)
		for _, line := range Diff(string(raw), text) {
			fmt.Fprintln(os.Stderr, "  "+line)
		}
		fmt.Fprintf(os.Stderr, "apicheck: if the change is intentional: go run ./cmd/apicheck -dir %s -update %s\n", *dir, *check)
		os.Exit(1)
	default:
		fmt.Print(text)
	}
}

// Surface parses the package in dir (tests excluded) and returns one
// canonically-rendered text block per exported declaration, sorted.
func Surface(dir string) ([]string, error) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, 0)
	if err != nil {
		return nil, err
	}
	var entries []string
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				entries = append(entries, declEntries(decl)...)
			}
		}
	}
	sort.Strings(entries)
	return entries, nil
}

// declEntries renders the exported parts of one top-level declaration.
func declEntries(decl ast.Decl) []string {
	switch d := decl.(type) {
	case *ast.FuncDecl:
		if !d.Name.IsExported() || !exportedReceiver(d) {
			return nil
		}
		fn := *d
		fn.Doc, fn.Body = nil, nil
		return []string{render(&fn)}
	case *ast.GenDecl:
		var out []string
		for _, spec := range d.Specs {
			switch sp := spec.(type) {
			case *ast.TypeSpec:
				if !sp.Name.IsExported() {
					continue
				}
				cp := *sp
				cp.Doc, cp.Comment = nil, nil
				cp.Type = filterType(sp.Type)
				out = append(out, render(&ast.GenDecl{Tok: d.Tok, Specs: []ast.Spec{&cp}}))
			case *ast.ValueSpec:
				names := exportedNames(sp.Names)
				if len(names) == 0 {
					continue
				}
				cp := *sp
				cp.Doc, cp.Comment = nil, nil
				cp.Names = names
				out = append(out, render(&ast.GenDecl{Tok: d.Tok, Specs: []ast.Spec{&cp}}))
			}
		}
		return out
	}
	return nil
}

// exportedReceiver reports whether a method's receiver type is exported
// (plain functions trivially qualify).
func exportedReceiver(d *ast.FuncDecl) bool {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return true
	}
	t := d.Recv.List[0].Type
	for {
		switch tt := t.(type) {
		case *ast.StarExpr:
			t = tt.X
		case *ast.IndexExpr: // generic receiver
			t = tt.X
		case *ast.Ident:
			return tt.IsExported()
		default:
			return true // unusual receiver: keep it, never hide surface
		}
	}
}

// filterType drops unexported struct fields and interface methods, so
// private implementation detail can change without moving the baseline.
func filterType(t ast.Expr) ast.Expr {
	switch tt := t.(type) {
	case *ast.StructType:
		cp := *tt
		cp.Fields = filterFields(tt.Fields, false)
		return &cp
	case *ast.InterfaceType:
		cp := *tt
		cp.Methods = filterFields(tt.Methods, true)
		return &cp
	}
	return t
}

// filterFields keeps exported (or embedded, for interfaces) entries of a
// field list, stripping comments.
func filterFields(fl *ast.FieldList, keepEmbedded bool) *ast.FieldList {
	if fl == nil {
		return nil
	}
	out := &ast.FieldList{}
	for _, f := range fl.List {
		if len(f.Names) == 0 {
			if keepEmbedded || embeddedExported(f.Type) {
				cp := *f
				cp.Doc, cp.Comment = nil, nil
				out.List = append(out.List, &cp)
			}
			continue
		}
		names := exportedNames(f.Names)
		if len(names) == 0 {
			continue
		}
		cp := *f
		cp.Doc, cp.Comment = nil, nil
		cp.Names = names
		out.List = append(out.List, &cp)
	}
	return out
}

// embeddedExported reports whether an embedded struct field is visible
// outside the package.
func embeddedExported(t ast.Expr) bool {
	for {
		switch tt := t.(type) {
		case *ast.StarExpr:
			t = tt.X
		case *ast.SelectorExpr:
			return tt.Sel.IsExported()
		case *ast.Ident:
			return tt.IsExported()
		default:
			return true
		}
	}
}

func exportedNames(ids []*ast.Ident) []*ast.Ident {
	var out []*ast.Ident
	for _, id := range ids {
		if id.IsExported() {
			out = append(out, id)
		}
	}
	return out
}

// render prints a node against an empty fileset, which collapses original
// source spacing into printer-canonical form — the property that makes
// the baseline stable under reformatting.
func render(node any) string {
	var b strings.Builder
	if err := printer.Fprint(&b, token.NewFileSet(), node); err != nil {
		return fmt.Sprintf("<unprintable: %v>", err)
	}
	return b.String()
}

// Diff reports the baseline drift as added/removed declaration blocks
// (blocks are compared as units; a changed signature shows up as one
// removal plus one addition).
func Diff(baseline, current string) []string {
	want := blockSet(baseline)
	got := blockSet(current)
	var out []string
	for _, b := range sortedKeys(want) {
		if !got[b] {
			out = append(out, "removed: "+firstLine(b))
		}
	}
	for _, b := range sortedKeys(got) {
		if !want[b] {
			out = append(out, "added:   "+firstLine(b))
		}
	}
	if len(out) == 0 {
		out = append(out, "formatting-only difference (regenerate the baseline)")
	}
	return out
}

// blockSet splits a surface file into declaration blocks. Blocks start at
// unindented declaration lines, so multi-line types (whose bodies are
// indented) stay whole; the # header is skipped.
func blockSet(text string) map[string]bool {
	set := map[string]bool{}
	var cur []string
	flush := func() {
		if len(cur) > 0 {
			set[strings.Join(cur, "\n")] = true
			cur = nil
		}
	}
	for _, line := range strings.Split(text, "\n") {
		switch {
		case strings.HasPrefix(line, "#"), strings.TrimSpace(line) == "":
			continue
		case strings.HasPrefix(line, " "), strings.HasPrefix(line, "\t"), strings.HasPrefix(line, "}"), strings.HasPrefix(line, ")"):
			cur = append(cur, line)
		default:
			flush()
			cur = append(cur, line)
		}
	}
	flush()
	return set
}

func sortedKeys(set map[string]bool) []string {
	keys := make([]string, 0, len(set))
	for k := range set {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func firstLine(block string) string {
	if i := strings.IndexByte(block, '\n'); i >= 0 {
		return block[:i] + " …"
	}
	return block
}
