package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writePkg materializes a throwaway package directory for Surface.
func writePkg(t *testing.T, files map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	for name, src := range files {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

func TestSurfaceExportedOnly(t *testing.T) {
	dir := writePkg(t, map[string]string{
		"a.go": `package p

// Exported doc.
func Exported(x int) (y int, err error) { return x, nil }

func unexported() {}

type Public struct {
	// Visible field.
	Visible int
	hidden  string
}

func (p *Public) Method() int { return p.Visible }

func (p *Public) unexportedMethod() {}

type private struct{ X int }

func (p private) Exported() {} // hidden: unexported receiver

const Answer = 42
const secret = 7

var ExportedVar int
`,
		"a_test.go": `package p

func TestOnlyHelper() {}
`,
	})
	surface, err := Surface(dir)
	if err != nil {
		t.Fatal(err)
	}
	joined := strings.Join(surface, "\n\n")
	for _, want := range []string{
		"func Exported(x int) (y int, err error)",
		"func (p *Public) Method() int",
		"type Public struct {\n\tVisible int\n}",
		"const Answer = 42",
		"var ExportedVar int",
	} {
		if !strings.Contains(joined, want) {
			t.Errorf("surface missing %q:\n%s", want, joined)
		}
	}
	for _, banned := range []string{"unexported", "hidden", "private", "secret", "TestOnlyHelper"} {
		if strings.Contains(joined, banned) {
			t.Errorf("surface leaked %q:\n%s", banned, joined)
		}
	}
}

func TestSurfaceDeterministicAndSorted(t *testing.T) {
	dir := writePkg(t, map[string]string{
		"z.go": "package p\n\nfunc Zeta() {}\n",
		"a.go": "package p\n\nfunc Alpha() {}\n",
	})
	first, err := Surface(dir)
	if err != nil {
		t.Fatal(err)
	}
	second, err := Surface(dir)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Join(first, "|") != strings.Join(second, "|") {
		t.Error("surface not deterministic across runs")
	}
	if len(first) != 2 || first[0] != "func Alpha()" || first[1] != "func Zeta()" {
		t.Errorf("surface not sorted: %q", first)
	}
}

func TestSurfaceStableUnderReformatting(t *testing.T) {
	compact := writePkg(t, map[string]string{
		"a.go": "package p\n\nfunc F(a int, b string) error { return nil }\n",
	})
	spaced := writePkg(t, map[string]string{
		"a.go": "package p\n\n\n// moved around\nfunc F(a int,\n\tb string) error {\n\treturn nil\n}\n",
	})
	s1, err := Surface(compact)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := Surface(spaced)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Join(s1, "|") != strings.Join(s2, "|") {
		t.Errorf("reformatting moved the surface: %q vs %q", s1, s2)
	}
}

func TestDiffReportsAddedAndRemoved(t *testing.T) {
	baseline := header + "func Old(x int)\n\ntype T struct {\n\tA int\n}\n"
	current := header + "func New(x int)\n\ntype T struct {\n\tA int\n}\n"
	lines := strings.Join(Diff(baseline, current), "\n")
	if !strings.Contains(lines, "removed: func Old(x int)") {
		t.Errorf("missing removal report: %s", lines)
	}
	if !strings.Contains(lines, "added:   func New(x int)") {
		t.Errorf("missing addition report: %s", lines)
	}
	if strings.Contains(lines, "type T") {
		t.Errorf("unchanged multi-line block reported: %s", lines)
	}
}

func TestDiffKeepsMultiLineBlocksWhole(t *testing.T) {
	text := header + "type T struct {\n\tA int\n\tB string\n}\n\nfunc F()\n"
	if lines := Diff(text, text); len(lines) != 1 || !strings.Contains(lines[0], "formatting-only") {
		t.Errorf("identical surfaces diffed: %v", lines)
	}
	grown := header + "type T struct {\n\tA int\n\tB string\n\tC bool\n}\n\nfunc F()\n"
	lines := strings.Join(Diff(text, grown), "\n")
	if !strings.Contains(lines, "removed: type T struct {") || !strings.Contains(lines, "added:   type T struct {") {
		t.Errorf("field change not reported as block change: %s", lines)
	}
}
