package main

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/trace"
)

// fixture builds a two-trace corpus: a distributed-looking trace (the
// coordinator export side) and a short local-only trace.
const (
	fleetTrace = "4bf92f3577b34da6a3ce929d0e0e4736"
	quickTrace = "aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaab"
)

func fixtureSpans(t0 time.Time) []trace.SpanRecord {
	mk := func(id, parent, service, name string, off, dur time.Duration, attrs map[string]any) trace.SpanRecord {
		return trace.SpanRecord{
			TraceID: fleetTrace, SpanID: id, Parent: parent,
			Service: service, Name: name,
			Start: t0.Add(off), End: t0.Add(off + dur), DurationNS: int64(dur),
			Attrs: attrs,
		}
	}
	return []trace.SpanRecord{
		mk("00000000000000a1", "", "experiments", "experiments.run", 0, 100*time.Millisecond, nil),
		mk("00000000000000a2", "00000000000000a1", "experiments", "dispatch.sweep", time.Millisecond, 95*time.Millisecond, map[string]any{"jobs": 2}),
		mk("00000000000000a3", "00000000000000a2", "experiments", "dispatch.submit", 2*time.Millisecond, 90*time.Millisecond, nil),
		{
			TraceID: quickTrace, SpanID: "00000000000000b1",
			Service: "experiments", Name: "experiments.run",
			Start: t0.Add(200 * time.Millisecond), End: t0.Add(202 * time.Millisecond),
			DurationNS: int64(2 * time.Millisecond),
		},
	}
}

// workerSpans is the other half of the fleet trace, as a worker's
// /debug/traces would export it: a remote-parent HTTP span continuing the
// coordinator's submit span, with the job execution under it.
func workerSpans(t0 time.Time) []trace.SpanRecord {
	return []trace.SpanRecord{
		{
			TraceID: fleetTrace, SpanID: "00000000000000c1", Parent: "00000000000000a3",
			RemoteParent: true, Service: "alsd:9101", Name: "http POST /v1/jobs",
			Start: t0.Add(3 * time.Millisecond), End: t0.Add(88 * time.Millisecond),
			DurationNS: int64(85 * time.Millisecond),
		},
		{
			TraceID: fleetTrace, SpanID: "00000000000000c2", Parent: "00000000000000c1",
			Service: "alsd:9101", Name: "job.run",
			Start: t0.Add(4 * time.Millisecond), End: t0.Add(87 * time.Millisecond),
			DurationNS: int64(83 * time.Millisecond),
			Attrs:      map[string]any{"status": "ok"},
		},
	}
}

func writeJSONL(t *testing.T, path string, recs []trace.SpanRecord) {
	t.Helper()
	var buf bytes.Buffer
	for _, r := range recs {
		b, err := json.Marshal(r)
		if err != nil {
			t.Fatal(err)
		}
		buf.Write(b)
		buf.WriteByte('\n')
	}
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
}

func runTool(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	var out, errb bytes.Buffer
	code := run(args, &out, &errb)
	return code, out.String(), errb.String()
}

func TestRenderTimelineAndCriticalPath(t *testing.T) {
	t0 := time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)
	path := filepath.Join(t.TempDir(), "spans.jsonl")
	writeJSONL(t, path, fixtureSpans(t0))

	code, out, errb := runTool(t, path)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb)
	}
	for _, want := range []string{
		"trace " + fleetTrace,
		"3 spans",
		"dispatch.sweep",
		"critical path (3 hops",
		"experiments.run",
		"=", // at least one Gantt bar
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	// Both traces render without -trace.
	if !strings.Contains(out, "trace "+quickTrace) {
		t.Errorf("second trace not rendered:\n%s", out)
	}
}

func TestListAndMinDur(t *testing.T) {
	t0 := time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)
	path := filepath.Join(t.TempDir(), "spans.jsonl")
	writeJSONL(t, path, fixtureSpans(t0))

	code, out, _ := runTool(t, "-list", path)
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	if !strings.Contains(out, fleetTrace) || !strings.Contains(out, quickTrace) {
		t.Fatalf("-list should show both traces:\n%s", out)
	}

	code, out, _ = runTool(t, "-list", "-min-dur", "50ms", path)
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	if !strings.Contains(out, fleetTrace) || strings.Contains(out, quickTrace) {
		t.Fatalf("-min-dur should keep only the long trace:\n%s", out)
	}
}

func TestTraceFilterAndNotFound(t *testing.T) {
	t0 := time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)
	path := filepath.Join(t.TempDir(), "spans.jsonl")
	writeJSONL(t, path, fixtureSpans(t0))

	code, out, _ := runTool(t, "-trace", fleetTrace, path)
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	if strings.Contains(out, quickTrace) {
		t.Fatalf("-trace should filter other traces:\n%s", out)
	}

	code, _, errb := runTool(t, "-trace", strings.Repeat("d", 32), path)
	if code != 1 || !strings.Contains(errb, "not found") {
		t.Fatalf("unknown trace: exit %d, stderr %q", code, errb)
	}
}

func TestMergeFileAndURL(t *testing.T) {
	t0 := time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)
	dir := t.TempDir()
	coord := filepath.Join(dir, "coord.jsonl")
	writeJSONL(t, coord, fixtureSpans(t0))

	var gotQuery string
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		gotQuery = r.URL.RawQuery
		var buf bytes.Buffer
		for _, rec := range workerSpans(t0) {
			b, _ := json.Marshal(rec)
			buf.Write(b)
			buf.WriteByte('\n')
		}
		w.Write(buf.Bytes()) //nolint:errcheck
	}))
	defer srv.Close()

	code, out, errb := runTool(t, "-trace", fleetTrace, coord, srv.URL+"/debug/traces")
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb)
	}
	if !strings.Contains(gotQuery, "format=jsonl") || !strings.Contains(gotQuery, "trace="+fleetTrace) {
		t.Errorf("URL fetch should push format and trace filter server-side, got query %q", gotQuery)
	}
	// The worker's remote-parent span stitches under the coordinator's
	// submit span: one tree, 5 spans, worker service listed.
	for _, want := range []string{"5 spans", "alsd:9101", "job.run [status=ok]", "http POST /v1/jobs"} {
		if !strings.Contains(out, want) {
			t.Errorf("merged render missing %q:\n%s", want, out)
		}
	}
	// Critical path should now descend into the worker.
	if !strings.Contains(out, "critical path (5 hops") {
		t.Errorf("critical path should cross the process boundary:\n%s", out)
	}
}

func TestDedupOnDoubleInput(t *testing.T) {
	t0 := time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)
	path := filepath.Join(t.TempDir(), "spans.jsonl")
	writeJSONL(t, path, fixtureSpans(t0))

	code, out, _ := runTool(t, "-trace", fleetTrace, path, path)
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	if !strings.Contains(out, "3 spans") {
		t.Fatalf("same file twice must dedup by span ID:\n%s", out)
	}
}

func TestErrors(t *testing.T) {
	if code, _, _ := runTool(t); code != 2 {
		t.Errorf("no args: want exit 2, got %d", code)
	}
	if code, _, errb := runTool(t, filepath.Join(t.TempDir(), "missing.jsonl")); code != 1 || errb == "" {
		t.Errorf("missing file: want exit 1 + message, got %d %q", code, errb)
	}
	bad := filepath.Join(t.TempDir(), "bad.jsonl")
	if err := os.WriteFile(bad, []byte("{not json\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if code, _, _ := runTool(t, bad); code != 1 {
		t.Errorf("corrupt input: want exit 1, got %d", code)
	}
}
