// Command tracecat renders distributed-trace exports as text: a Gantt
// timeline per trace with per-span durations, and a critical-path summary
// showing where the wall-clock actually went. It reads the JSONL span
// format written by `experiments -trace-out`, `GET /debug/traces?format=
// jsonl` on any alsd, and trace.WriteJSONL generally.
//
// Inputs merge: pass several files and/or /debug/traces URLs and spans
// are joined by trace ID, so a distributed sweep — coordinator export
// plus each worker's /debug/traces — renders as one fleet-wide timeline.
//
// Usage:
//
//	experiments -scale quick -trace-out run.jsonl -workers http://h1:8080,http://h2:8080
//	tracecat -list run.jsonl
//	tracecat -trace 4bf92f3577b34da6a3ce929d0e0e4736 \
//	    run.jsonl http://h1:8080/debug/traces http://h2:8080/debug/traces
//
// Without -trace, every trace passing -min-dur is rendered, newest last.
//
// Exit codes: 0 rendered, 1 input error or no matching trace, 2 usage.
package main

import (
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"os"
	"sort"
	"strings"
	"time"

	"repro/internal/trace"
)

func main() { os.Exit(run(os.Args[1:], os.Stdout, os.Stderr)) }

func run(argv []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("tracecat", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		traceID = fs.String("trace", "", "render only this trace ID (32 hex chars)")
		list    = fs.Bool("list", false, "list the traces in the input, one line each, instead of rendering")
		minDur  = fs.Duration("min-dur", 0, "skip traces shorter than this (e.g. 50ms)")
		width   = fs.Int("width", 64, "timeline bar width in characters")
	)
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: tracecat [flags] <spans.jsonl | http://host/debug/traces> ...\n\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(argv); err != nil {
		return 2
	}
	if fs.NArg() == 0 {
		fs.Usage()
		return 2
	}
	if *width < 16 {
		*width = 16
	}

	var recs []trace.SpanRecord
	for _, in := range fs.Args() {
		rs, err := load(in, *traceID)
		if err != nil {
			fmt.Fprintf(stderr, "tracecat: %s: %v\n", in, err)
			return 1
		}
		recs = append(recs, rs...)
	}

	traces := group(recs)
	kept := traces[:0]
	for _, t := range traces {
		if *traceID != "" && t.id != *traceID {
			continue
		}
		if t.dur < *minDur {
			continue
		}
		kept = append(kept, t)
	}
	if len(kept) == 0 {
		switch {
		case *traceID != "":
			fmt.Fprintf(stderr, "tracecat: trace %s not found in input (%d spans read)\n", *traceID, len(recs))
		default:
			fmt.Fprintf(stderr, "tracecat: no traces matched (%d spans read)\n", len(recs))
		}
		return 1
	}

	if *list {
		for _, t := range kept {
			fmt.Fprintf(stdout, "%s  %10s  %3d spans  %d service(s)  %s\n",
				t.id, fmtDur(t.dur), len(t.nodes), len(t.services), t.rootName())
		}
		return 0
	}
	for i, t := range kept {
		if i > 0 {
			fmt.Fprintln(stdout)
		}
		t.render(stdout, *width)
	}
	return 0
}

// load reads one input: a JSONL file, or a /debug/traces URL which is
// fetched with format=jsonl (and the -trace filter pushed server-side so
// a busy daemon only ships the spans being asked about).
func load(in, traceID string) ([]trace.SpanRecord, error) {
	if strings.HasPrefix(in, "http://") || strings.HasPrefix(in, "https://") {
		u, err := url.Parse(in)
		if err != nil {
			return nil, err
		}
		q := u.Query()
		q.Set("format", "jsonl")
		if q.Get("limit") == "" {
			q.Set("limit", "1000")
		}
		if traceID != "" {
			q.Set("trace", traceID)
		}
		u.RawQuery = q.Encode()
		resp, err := http.Get(u.String())
		if err != nil {
			return nil, err
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			b, _ := io.ReadAll(io.LimitReader(resp.Body, 256))
			return nil, fmt.Errorf("%s: %s", resp.Status, strings.TrimSpace(string(b)))
		}
		return trace.ReadJSONL(resp.Body)
	}
	f, err := os.Open(in)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return trace.ReadJSONL(f)
}

// node is one span plus its resolved children.
type node struct {
	rec      trace.SpanRecord
	children []*node
}

// traceTree is every span sharing one trace ID, linked parent→child.
// Spans whose parent is absent from the input (including remote parents
// when only one side's export was supplied) become additional roots.
type traceTree struct {
	id       string
	roots    []*node
	nodes    []*node
	services map[string]bool
	start    time.Time
	dur      time.Duration
}

// group joins records by trace ID, dedups by span ID (merged inputs
// overlap), builds each tree and returns the traces oldest-first.
func group(recs []trace.SpanRecord) []*traceTree {
	byTrace := map[string][]trace.SpanRecord{}
	seen := map[string]bool{}
	for _, r := range recs {
		k := r.TraceID + "/" + r.SpanID
		if seen[k] {
			continue
		}
		seen[k] = true
		byTrace[r.TraceID] = append(byTrace[r.TraceID], r)
	}
	var out []*traceTree
	for id, rs := range byTrace {
		t := &traceTree{id: id, services: map[string]bool{}}
		byID := map[string]*node{}
		for _, r := range rs {
			n := &node{rec: r}
			byID[r.SpanID] = n
			t.nodes = append(t.nodes, n)
			t.services[r.Service] = true
		}
		var end time.Time
		for _, n := range t.nodes {
			if t.start.IsZero() || n.rec.Start.Before(t.start) {
				t.start = n.rec.Start
			}
			if n.rec.End.After(end) {
				end = n.rec.End
			}
			if p, ok := byID[n.rec.Parent]; ok && n.rec.Parent != n.rec.SpanID {
				p.children = append(p.children, n)
			} else {
				t.roots = append(t.roots, n)
			}
		}
		t.dur = end.Sub(t.start)
		for _, n := range t.nodes {
			sort.Slice(n.children, func(i, j int) bool {
				return n.children[i].rec.Start.Before(n.children[j].rec.Start)
			})
		}
		sort.Slice(t.roots, func(i, j int) bool {
			return t.roots[i].rec.Start.Before(t.roots[j].rec.Start)
		})
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].start.Before(out[j].start) })
	return out
}

func (t *traceTree) rootName() string {
	if len(t.roots) == 0 {
		return "?"
	}
	return t.roots[0].rec.Name
}

// render prints the trace header, the Gantt timeline (one line per span,
// depth-first in start order, bar positioned on the shared trace clock)
// and the critical-path summary.
func (t *traceTree) render(w io.Writer, width int) {
	svcs := make([]string, 0, len(t.services))
	for s := range t.services {
		svcs = append(svcs, s)
	}
	sort.Strings(svcs)
	fmt.Fprintf(w, "trace %s  %d spans  %s  [%s]\n",
		t.id, len(t.nodes), fmtDur(t.dur), strings.Join(svcs, ", "))
	for _, r := range t.roots {
		t.renderSpan(w, r, 0, width)
	}
	t.renderCriticalPath(w)
}

func (t *traceTree) renderSpan(w io.Writer, n *node, depth, width int) {
	dur := t.dur
	if dur <= 0 {
		dur = time.Nanosecond
	}
	off := int(float64(n.rec.Start.Sub(t.start)) / float64(dur) * float64(width))
	ln := int(float64(n.rec.Duration())/float64(dur)*float64(width) + 0.5)
	if ln < 1 {
		ln = 1
	}
	if off > width-1 {
		off = width - 1
	}
	if off+ln > width {
		ln = width - off
	}
	bar := strings.Repeat(" ", off) + strings.Repeat("=", ln)
	label := n.rec.Name
	if v, ok := n.rec.Attrs["status"]; ok {
		label += fmt.Sprintf(" [status=%v]", v)
	} else if v, ok := n.rec.Attrs["outcome"]; ok {
		label += fmt.Sprintf(" [outcome=%v]", v)
	}
	fmt.Fprintf(w, "  %-*s %10s  %-14s %s%s\n",
		width, bar, fmtDur(n.rec.Duration()), n.rec.Service, strings.Repeat("  ", depth), label)
	for _, c := range n.children {
		t.renderSpan(w, c, depth+1, width)
	}
}

// renderCriticalPath walks from the first root, at each span descending
// into the child that ends last, and reports each hop's SELF time — its
// duration minus the on-path child's — so the listed percentages say
// where the end-to-end latency was actually spent.
func (t *traceTree) renderCriticalPath(w io.Writer) {
	if len(t.roots) == 0 || t.dur <= 0 {
		return
	}
	var path []*node
	for n := t.roots[0]; n != nil; {
		path = append(path, n)
		var next *node
		for _, c := range n.children {
			if next == nil || c.rec.End.After(next.rec.End) {
				next = c
			}
		}
		n = next
	}
	fmt.Fprintf(w, "critical path (%d hops over %s):\n", len(path), fmtDur(t.dur))
	for i, n := range path {
		self := n.rec.Duration()
		if i+1 < len(path) {
			self -= path[i+1].rec.Duration()
		}
		if self < 0 {
			self = 0
		}
		pct := 100 * float64(self) / float64(t.dur)
		fmt.Fprintf(w, "  %10s %5.1f%%  %s (%s)\n", fmtDur(self), pct, n.rec.Name, n.rec.Service)
	}
}

// fmtDur prints a duration at a precision matched to its magnitude, so
// microsecond spans and minute-long sweeps both read naturally.
func fmtDur(d time.Duration) string {
	switch {
	case d >= time.Minute:
		return d.Truncate(time.Second).String()
	case d >= time.Second:
		return fmt.Sprintf("%.3fs", d.Seconds())
	case d >= time.Millisecond:
		return fmt.Sprintf("%.2fms", float64(d.Microseconds())/1e3)
	default:
		return fmt.Sprintf("%dµs", d.Microseconds())
	}
}
