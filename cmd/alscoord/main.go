// Command alscoord runs the cluster control plane: workers register and
// heartbeat instead of being hand-listed, one weighted-fair queue feeds
// every lane by observed throughput, and clients reach the fleet through
// the same job API a single alsd serves.
//
// Usage:
//
//	alscoord -addr :9090 -store cluster-results.jsonl
//	alsd -addr :8081 -register http://localhost:9090 &
//	alsd -addr :8082 -register http://localhost:9090 &
//	experiments -coord http://localhost:9090 ...
//
// Workers join with POST /cluster/register and stay live by heartbeating
// (queue depth and evals/sec from their own /metrics counters ride
// along); -expire-after silent intervals drain a worker and fail its
// in-flight cells over to the rest of the fleet. GET /cluster/workers
// snapshots the live fleet.
//
// Intake is the worker job API (POST /v1/jobs, GET /v1/jobs/{hash}) plus
// the /v2 batch surface: POST /v2/batches accepts many specs in one 202,
// deduplicated against the shared store before anything is scheduled,
// and POST /v2/subscriptions registers a callback URL for a set of
// content hashes — each result is POSTed exactly once as an HMAC-signed
// envelope (X-ALS-Signature: sha256=<hex>) with capped-backoff retries.
//
// Jobs carry a tenant (X-ALS-Tenant header or the /v2 "tenant" field)
// and a priority; dequeue is weighted-fair across tenants
// (-tenant-weight name=weight, repeatable) and -max-pending caps one
// tenant's outstanding cells.
//
// Accepted cells, terminal transitions, subscriptions and acknowledged
// deliveries are write-ahead logged (-wal): a coordinator killed hard
// re-enqueues lost work and re-delivers unacknowledged envelopes on
// restart. Results live in the shared store (-store / -store-remote,
// same flags as alsd), so a restarted coordinator answers every hash the
// fleet ever computed.
//
// GET /metrics exposes the cluster gauges (als_cluster_*, als_webhook_*)
// next to the lane instruments; GET /debug/traces the scheduling spans.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/internal/coord"
	"repro/internal/store"
	"repro/internal/trace"
)

// tenantWeights collects repeatable -tenant-weight name=weight flags.
type tenantWeights map[string]int

func (t tenantWeights) String() string { return fmt.Sprintf("%v", map[string]int(t)) }

func (t tenantWeights) Set(v string) error {
	name, val, ok := strings.Cut(v, "=")
	if !ok || name == "" {
		return fmt.Errorf("want name=weight, got %q", v)
	}
	n, err := strconv.Atoi(val)
	if err != nil || n < 1 {
		return fmt.Errorf("weight in %q must be a positive integer", v)
	}
	t[name] = n
	return nil
}

func main() {
	weights := tenantWeights{}
	var (
		addr         = flag.String("addr", ":9090", "HTTP listen address")
		storePath    = flag.String("store", "alscoord-results.jsonl", "shared result store file (required: the cluster deduplicates against it)")
		storeBackend = flag.String("store-backend", "auto", "store backend: auto, jsonl, embedded or remote")
		storeRemote  = flag.String("store-remote", "", "base URL of an alsd whose /store to use as the shared result store")
		walPath      = flag.String("wal", "auto", "coordinator write-ahead log: a path, \"auto\" (derive <store>.coord.wal), or empty to disable durability")
		hbInterval   = flag.Duration("hb-interval", 2*time.Second, "heartbeat cadence workers are told to follow")
		expireAfter  = flag.Int("expire-after", 3, "silent heartbeat intervals before a worker is drained")
		maxPending   = flag.Int("max-pending", 4096, "per-tenant cap on queued+running cells")
		logFormat    = flag.String("log-format", "text", "log output format: text or json")
		logLevel     = flag.String("log-level", "info", "log verbosity: debug, info, warn or error")
		traceBuf     = flag.Int("trace-buf", trace.DefaultCapacity, "span ring-buffer capacity for GET /debug/traces (0 disables tracing)")
	)
	flag.Var(weights, "tenant-weight", "fair-dequeue weight as name=weight (repeatable; default 1)")
	flag.Parse()

	logger, err := newLogger(*logFormat, *logLevel)
	if err != nil {
		fmt.Fprintln(os.Stderr, "alscoord:", err)
		os.Exit(2)
	}

	target, kind := *storePath, *storeBackend
	if *storeRemote != "" {
		if kind != "auto" && kind != "remote" {
			logger.Error("conflicting flags", "error", "-store-remote requires -store-backend remote (or auto)")
			os.Exit(2)
		}
		target, kind = *storeRemote, "remote"
	}
	if target == "" {
		logger.Error("a shared result store is required", "flag", "-store")
		os.Exit(2)
	}
	st, err := store.OpenKind(kind, target)
	if err != nil {
		logger.Error("store open failed", "target", target, "error", err)
		os.Exit(1)
	}
	logger.Info("store opened", "target", st.Path(), "backend", st.Kind(),
		"results", st.Len(), "corrupt_records", st.Corrupt())

	wp := *walPath
	if wp == "auto" {
		wp = "alscoord-queue.wal"
		if st.Kind() != "remote" {
			wp = st.Path() + ".coord.wal"
		}
	}
	var wal *coord.WAL
	if wp != "" {
		wal, err = coord.OpenWAL(wp)
		if err != nil {
			logger.Error("wal open failed", "path", wp, "error", err)
			os.Exit(1)
		}
		logger.Info("wal opened", "path", wp, "pending", len(wal.Pending()),
			"subscriptions", len(wal.Subs()), "corrupt_lines", wal.Corrupt())
	}

	var tracer *trace.Tracer
	if *traceBuf > 0 {
		tracer = trace.New(trace.Options{Service: "alscoord" + *addr, Capacity: *traceBuf})
		logger.Info("tracing enabled", "path", "/debug/traces", "capacity", *traceBuf)
	}

	c, err := coord.New(coord.Options{
		Store:               st,
		WAL:                 wal,
		Logger:              logger,
		Tracer:              tracer,
		HeartbeatInterval:   *hbInterval,
		ExpireAfter:         *expireAfter,
		MaxPendingPerTenant: *maxPending,
		TenantWeights:       weights,
	})
	if err != nil {
		logger.Error("coordinator start failed", "error", err)
		os.Exit(1)
	}

	hs := &http.Server{Addr: *addr, Handler: c.Handler()}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	logger.Info("serving", "addr", *addr,
		"hb_interval", (*hbInterval).String(), "expire_after", *expireAfter)

	select {
	case err := <-errc:
		logger.Error("listener died", "error", err)
		os.Exit(1)
	case <-ctx.Done():
	}
	stop()
	logger.Info("signal received, draining")

	shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := hs.Shutdown(shutdownCtx); err != nil {
		logger.Warn("http shutdown", "error", err)
	}
	c.Close()
	if wal != nil {
		if err := wal.Close(); err != nil {
			logger.Warn("wal close", "error", err)
		}
	}
	if err := st.Close(); err != nil {
		logger.Warn("store close", "error", err)
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		logger.Warn("http server", "error", err)
	}
	fmt.Fprintln(os.Stderr, "alscoord: drained cleanly")
}

// newLogger builds the process logger from the -log-format and -log-level
// flags; stderr only, keeping stdout free for tooling.
func newLogger(format, level string) (*slog.Logger, error) {
	var lv slog.Level
	if err := lv.UnmarshalText([]byte(level)); err != nil {
		return nil, fmt.Errorf("bad -log-level %q (want debug, info, warn or error)", level)
	}
	opts := &slog.HandlerOptions{Level: lv}
	switch format {
	case "text":
		return slog.New(slog.NewTextHandler(os.Stderr, opts)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(os.Stderr, opts)), nil
	default:
		return nil, fmt.Errorf("bad -log-format %q (want text or json)", format)
	}
}
