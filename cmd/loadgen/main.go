// Command loadgen load-proves an alsd fleet: it drives many concurrent
// /v2 client sessions with a mixed workload — cache-hitting and
// cache-missing submissions, SSE streaming and polling consumers — and
// exits non-zero unless the run meets its SLOs:
//
//   - p99 submit latency under -slo-p99 (submissions must stay fast even
//     while every worker slot is busy — accepting is queueing, not
//     computing);
//   - zero dropped SSE terminals: every event stream ends with exactly
//     one done/failed/cancelled event, never a bare EOF;
//   - hard-error rate (transport failures, 5xx other than queue-full
//     backpressure, jobs finishing failed) at or below -slo-error-rate.
//
// Queue-full 503s are backpressure, not errors: the session backs off and
// resubmits, and the retry count is reported separately. That is the
// contract clients are told to follow, so the harness follows it too.
//
// With -check-traces the harness also proves the tracing pipeline under
// load: every accepted submission's X-Request-Id (the trace ID when the
// target runs with tracing on) is recorded, and after the run each
// target's GET /debug/traces is scraped and every recorded trace must be
// complete — a root request span carrying its submit outcome, and, for
// every genuinely queued submission, a terminal job.run child with its
// final status. Any incomplete trace fails the run.
//
// Usage (two local workers, the CI smoke shape):
//
//	loadgen -targets http://127.0.0.1:18080,http://127.0.0.1:18081 \
//	        -sessions 120 -per-session 2
//
// The summary line is machine-grepped by scripts/load_smoke.sh; the SLO
// verdict is the exit code.
package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/trace"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

type config struct {
	targets      []string
	sessions     int
	perSession   int
	cachedFrac   float64
	streamFrac   float64
	budget       float64
	circuit      string
	metric       string
	seed         int64
	timeout      time.Duration
	sloP99       time.Duration
	sloErrorRate float64
	checkTraces  bool
}

// submitRef remembers one accepted submission for the post-run trace
// audit: which target took it and the request ID its response carried.
type submitRef struct {
	target string
	id     string
}

// tally aggregates everything the sessions observe; all fields are
// atomics so the hot path never serializes on a lock except the latency
// slice.
type tally struct {
	submits       atomic.Int64 // accepted submissions
	cachedHits    atomic.Int64 // submissions answered done immediately
	retries       atomic.Int64 // queue-full backpressure resubmits
	hardErrors    atomic.Int64 // transport failures, unexpected statuses, failed jobs
	streams       atomic.Int64 // SSE sessions opened
	terminals     atomic.Int64 // SSE streams ended by a terminal event
	dropped       atomic.Int64 // SSE streams ended without one
	polled        atomic.Int64 // polling sessions completed
	events        atomic.Int64 // SSE events consumed
	mu            sync.Mutex
	submitLatency []time.Duration
	errorsSample  []string
	submitRefs    []submitRef
}

func (t *tally) recordSubmit(target, id string) {
	t.mu.Lock()
	t.submitRefs = append(t.submitRefs, submitRef{target: target, id: id})
	t.mu.Unlock()
}

func (t *tally) recordLatency(d time.Duration) {
	t.mu.Lock()
	t.submitLatency = append(t.submitLatency, d)
	t.mu.Unlock()
}

func (t *tally) hardError(format string, args ...any) {
	t.hardErrors.Add(1)
	t.mu.Lock()
	if len(t.errorsSample) < 10 {
		t.errorsSample = append(t.errorsSample, fmt.Sprintf(format, args...))
	}
	t.mu.Unlock()
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("loadgen", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		targets    = fs.String("targets", "", "comma-separated alsd base URLs (required)")
		sessions   = fs.Int("sessions", 100, "concurrent client sessions")
		perSession = fs.Int("per-session", 2, "submissions per session")
		cachedFrac = fs.Float64("cached-frac", 0.5, "fraction of submissions reusing a shared seed (cache/dedup hits)")
		streamFrac = fs.Float64("stream-frac", 0.5, "fraction of submissions consumed over SSE (the rest poll)")
		circuit    = fs.String("circuit", "Adder16", "benchmark circuit to submit")
		metric     = fs.String("metric", "nmed", "error metric")
		budget     = fs.Float64("budget", 0.0244, "error budget")
		seed       = fs.Int64("seed", 1, "base RNG seed (workload mix and job seeds)")
		timeout    = fs.Duration("timeout", 5*time.Minute, "whole-run deadline")
		sloP99     = fs.Duration("slo-p99", 2*time.Second, "SLO: maximum p99 submit latency")
		sloErrRate = fs.Float64("slo-error-rate", 0.01, "SLO: maximum hard-error fraction of submissions")
		checkTr    = fs.Bool("check-traces", false, "after the run, scrape each target's /debug/traces and require every accepted submit's trace to be complete (targets must run with tracing on)")
		coordFlag  = fs.String("coord", "", "alscoord base URL: drive the cluster control plane instead of individual daemons (enables -batch/-webhook)")
		batchJobs  = fs.Int("batch", 24, "with -coord: total cells submitted through POST /v2/batches")
		batchChunk = fs.Int("batch-chunk", 8, "with -coord: cells per /v2/batches call")
		webhook    = fs.Bool("webhook", false, "with -coord: subscribe a local callback sink to every hash and require exactly one signed delivery per hash")
		tenant     = fs.String("tenant", "loadgen", "with -coord: tenant label for submitted batches")
	)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0
		}
		return 2
	}
	if *coordFlag != "" {
		return runCluster(clusterConfig{
			coord:      trimBase(*coordFlag),
			batchJobs:  *batchJobs,
			chunk:      *batchChunk,
			webhook:    *webhook,
			tenant:     *tenant,
			circuit:    *circuit,
			metric:     *metric,
			budget:     *budget,
			seed:       *seed,
			timeout:    *timeout,
			sloP99:     *sloP99,
			sloErrRate: *sloErrRate,
		}, stdout, stderr)
	}
	cfg := config{
		sessions:     *sessions,
		perSession:   *perSession,
		cachedFrac:   *cachedFrac,
		streamFrac:   *streamFrac,
		budget:       *budget,
		circuit:      *circuit,
		metric:       *metric,
		seed:         *seed,
		timeout:      *timeout,
		sloP99:       *sloP99,
		sloErrorRate: *sloErrRate,
		checkTraces:  *checkTr,
	}
	for _, u := range strings.Split(*targets, ",") {
		if u = strings.TrimSpace(u); u != "" {
			if !strings.Contains(u, "://") {
				u = "http://" + u
			}
			cfg.targets = append(cfg.targets, strings.TrimRight(u, "/"))
		}
	}
	if len(cfg.targets) == 0 {
		fmt.Fprintln(stderr, "loadgen: -targets is required")
		return 2
	}

	ctx, cancel := context.WithTimeout(context.Background(), cfg.timeout)
	defer cancel()
	client := &http.Client{} // no client timeout: SSE streams outlive any fixed value; ctx bounds the run

	var t tally
	start := time.Now()
	var wg sync.WaitGroup
	for i := 0; i < cfg.sessions; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(cfg.seed + int64(i)))
			target := cfg.targets[i%len(cfg.targets)]
			for n := 0; n < cfg.perSession; n++ {
				session(ctx, client, cfg, target, i, n, rng, &t)
			}
		}(i)
	}
	wg.Wait()
	elapsed := time.Since(start)

	code := report(cfg, &t, elapsed, stdout, stderr)
	if cfg.checkTraces {
		if !verifyTraces(client, &t, stdout, stderr) && code == 0 {
			code = 1
		}
	}
	return code
}

// session submits one job and consumes it to its terminal state, over SSE
// or by polling.
func session(ctx context.Context, client *http.Client, cfg config, target string, sess, n int, rng *rand.Rand, t *tally) {
	// The cached cohort shares one job seed, so across the whole run those
	// submissions collapse onto a handful of actual flows (dedup while
	// running, store hits after). The uncached cohort gets a unique seed.
	jobSeed := cfg.seed
	if rng.Float64() >= cfg.cachedFrac {
		jobSeed = cfg.seed + 1000 + int64(sess*cfg.perSession+n)
	}
	body, _ := json.Marshal(map[string]any{
		"circuit": cfg.circuit,
		"metric":  cfg.metric,
		"budget":  cfg.budget,
		"seed":    jobSeed,
	})

	var (
		id     string
		status string
	)
	for attempt := 0; ; attempt++ {
		begin := time.Now()
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, target+"/v2/jobs", bytes.NewReader(body))
		if err != nil {
			t.hardError("submit request: %v", err)
			return
		}
		req.Header.Set("Content-Type", "application/json")
		resp, err := client.Do(req)
		if err != nil {
			if ctx.Err() != nil {
				t.hardError("submit: run deadline exceeded")
				return
			}
			t.hardError("submit: %v", err)
			return
		}
		payload, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
		resp.Body.Close()
		if resp.StatusCode == http.StatusServiceUnavailable {
			// Queue-full backpressure: the documented client contract is
			// "back off and resubmit", so do exactly that.
			t.retries.Add(1)
			select {
			case <-ctx.Done():
				t.hardError("submit: run deadline exceeded while backing off")
				return
			case <-time.After(time.Duration(50+rng.Intn(200)) * time.Millisecond):
			}
			continue
		}
		if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusAccepted {
			t.hardError("submit: HTTP %d: %.120s", resp.StatusCode, payload)
			return
		}
		t.recordLatency(time.Since(begin))
		t.submits.Add(1)
		if cfg.checkTraces {
			t.recordSubmit(target, resp.Header.Get("X-Request-Id"))
		}
		var v struct {
			ID     string `json:"id"`
			Status string `json:"status"`
		}
		if err := json.Unmarshal(payload, &v); err != nil || v.ID == "" {
			t.hardError("submit: undecodable response: %.120s", payload)
			return
		}
		id, status = v.ID, v.Status
		break
	}

	if status == "done" {
		t.cachedHits.Add(1)
		// Already terminal; still exercise the chosen consumption path —
		// a terminal job's SSE stream must yield its terminal event
		// immediately rather than hanging or EOFing empty.
	}
	if rng.Float64() < cfg.streamFrac {
		streamJob(ctx, client, target, id, t)
	} else {
		pollJob(ctx, client, target, id, t)
	}
}

// streamJob consumes a job's SSE stream until its terminal event. A
// stream that ends any other way is a dropped terminal — the exact defect
// the zero-drop SLO exists to catch.
func streamJob(ctx context.Context, client *http.Client, target, id string, t *tally) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, target+"/v2/jobs/"+id+"/events", nil)
	if err != nil {
		t.hardError("events request: %v", err)
		return
	}
	resp, err := client.Do(req)
	if err != nil {
		t.hardError("events: %v", err)
		return
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.hardError("events: HTTP %d", resp.StatusCode)
		return
	}
	t.streams.Add(1)

	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<22)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "event: ") {
			continue
		}
		t.events.Add(1)
		switch ev := strings.TrimPrefix(line, "event: "); ev {
		case "done", "cancelled":
			t.terminals.Add(1)
			return
		case "failed":
			t.terminals.Add(1)
			t.hardError("job %s finished failed", id)
			return
		}
	}
	t.dropped.Add(1)
	t.hardError("job %s: SSE stream ended without a terminal event", id)
}

// pollJob polls the job view until it reaches a terminal status.
func pollJob(ctx context.Context, client *http.Client, target, id string, t *tally) {
	for {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, target+"/v2/jobs/"+id, nil)
		if err != nil {
			t.hardError("poll request: %v", err)
			return
		}
		resp, err := client.Do(req)
		if err != nil {
			t.hardError("poll %s: %v", id, err)
			return
		}
		payload, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.hardError("poll %s: HTTP %d", id, resp.StatusCode)
			return
		}
		var v struct {
			Status string `json:"status"`
		}
		if err := json.Unmarshal(payload, &v); err != nil {
			t.hardError("poll %s: undecodable response", id)
			return
		}
		switch v.Status {
		case "done", "cancelled":
			t.polled.Add(1)
			return
		case "failed":
			t.polled.Add(1)
			t.hardError("job %s finished failed", id)
			return
		}
		select {
		case <-ctx.Done():
			t.hardError("poll %s: run deadline exceeded", id)
			return
		case <-time.After(100 * time.Millisecond):
		}
	}
}

// report prints the run summary and checks the SLOs, returning the
// process exit code.
func report(cfg config, t *tally, elapsed time.Duration, stdout, stderr io.Writer) int {
	t.mu.Lock()
	lat := append([]time.Duration(nil), t.submitLatency...)
	sample := t.errorsSample
	t.mu.Unlock()
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	pct := func(p float64) time.Duration {
		if len(lat) == 0 {
			return 0
		}
		i := int(p * float64(len(lat)-1))
		return lat[i]
	}

	submits := t.submits.Load()
	expected := int64(cfg.sessions * cfg.perSession)
	errRate := 0.0
	if expected > 0 {
		errRate = float64(t.hardErrors.Load()) / float64(expected)
	}

	fmt.Fprintf(stdout, "loadgen: %d sessions x %d submissions against %d target(s) in %v\n",
		cfg.sessions, cfg.perSession, len(cfg.targets), elapsed.Round(time.Millisecond))
	fmt.Fprintf(stdout, "loadgen: submits=%d cached=%d retries=%d streams=%d terminals=%d dropped=%d polled=%d events=%d errors=%d\n",
		submits, t.cachedHits.Load(), t.retries.Load(), t.streams.Load(),
		t.terminals.Load(), t.dropped.Load(), t.polled.Load(), t.events.Load(), t.hardErrors.Load())
	fmt.Fprintf(stdout, "loadgen: submit latency p50=%v p95=%v p99=%v max=%v\n",
		pct(.50).Round(time.Microsecond), pct(.95).Round(time.Microsecond),
		pct(.99).Round(time.Microsecond), pct(1).Round(time.Microsecond))
	for _, e := range sample {
		fmt.Fprintf(stderr, "loadgen: error: %s\n", e)
	}

	ok := true
	if p99 := pct(.99); p99 > cfg.sloP99 {
		fmt.Fprintf(stderr, "loadgen: SLO VIOLATION: submit p99 %v > %v\n", p99, cfg.sloP99)
		ok = false
	}
	if d := t.dropped.Load(); d > 0 {
		fmt.Fprintf(stderr, "loadgen: SLO VIOLATION: %d SSE stream(s) dropped their terminal event\n", d)
		ok = false
	}
	if errRate > cfg.sloErrorRate {
		fmt.Fprintf(stderr, "loadgen: SLO VIOLATION: hard-error rate %.4f > %.4f\n", errRate, cfg.sloErrorRate)
		ok = false
	}
	if submits < expected {
		fmt.Fprintf(stderr, "loadgen: SLO VIOLATION: only %d of %d submissions were accepted\n", submits, expected)
		ok = false
	}
	if ok {
		fmt.Fprintln(stdout, "loadgen: all SLOs met")
		return 0
	}
	return 1
}

// verifyTraces scrapes every target's /debug/traces and checks span
// completeness for each accepted submission: the request ID must be a
// trace ID (tracing was on), the trace must still be buffered with its
// root request span, and a submission whose outcome was "queued" — one
// that actually executed on that worker — must show a terminal job.run
// child carrying its final status. Dedup and store-served submissions
// legitimately have no job.run of their own.
func verifyTraces(client *http.Client, t *tally, stdout, stderr io.Writer) bool {
	t.mu.Lock()
	refs := append([]submitRef(nil), t.submitRefs...)
	t.mu.Unlock()

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	// Fetch each distinct submit trace by ID (the server filters ring-side,
	// so a busy daemon holding thousands of poll/SSE traces only ships the
	// spans being audited).
	spans := map[string][]trace.SpanRecord{} // target+trace ID → spans
	fetch := func(target, id string) ([]trace.SpanRecord, error) {
		url := fmt.Sprintf("%s/debug/traces?format=jsonl&trace=%s", target, id)
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
		if err != nil {
			return nil, err
		}
		resp, err := client.Do(req)
		if err != nil {
			return nil, err
		}
		recs, err := trace.ReadJSONL(resp.Body)
		resp.Body.Close()
		if err != nil || resp.StatusCode != http.StatusOK {
			return nil, fmt.Errorf("HTTP %d, %v", resp.StatusCode, err)
		}
		return recs, nil
	}
	for _, r := range refs {
		if len(r.id) != 32 {
			continue
		}
		key := r.target + "/" + r.id
		if _, done := spans[key]; done {
			continue
		}
		recs, err := fetch(r.target, r.id)
		if err != nil {
			fmt.Fprintf(stderr, "loadgen: trace scrape %s: %v\n", r.target, err)
			return false
		}
		spans[key] = recs
	}

	bad := 0
	complain := func(format string, args ...any) {
		if bad < 10 {
			fmt.Fprintf(stderr, "loadgen: trace check: "+format+"\n", args...)
		}
		bad++
	}
	for _, r := range refs {
		if len(r.id) != 32 {
			complain("submit to %s returned request id %q, not a trace ID — is the target running with -trace-buf 0?", r.target, r.id)
			continue
		}
		tr := spans[r.target+"/"+r.id]
		if len(tr) == 0 {
			complain("trace %s missing from %s (evicted? raise the worker's -trace-buf)", r.id, r.target)
			continue
		}
		var root *trace.SpanRecord
		for i := range tr {
			if tr[i].Root() && strings.HasPrefix(tr[i].Name, "http ") {
				root = &tr[i]
				break
			}
		}
		if root == nil {
			complain("trace %s on %s has no root request span", r.id, r.target)
			continue
		}
		if root.Attrs["outcome"] != "queued" {
			continue
		}
		terminal := false
		for _, rec := range tr {
			if rec.Name == "job.run" && rec.Attrs["status"] != nil {
				terminal = true
				break
			}
		}
		if !terminal {
			complain("trace %s on %s: queued submit has no terminal job.run span", r.id, r.target)
		}
	}
	if bad > 0 {
		fmt.Fprintf(stderr, "loadgen: trace check FAILED: %d of %d accepted submits incomplete\n", bad, len(refs))
		return false
	}
	fmt.Fprintf(stdout, "loadgen: trace check: %d/%d accepted submits have complete traces\n", len(refs), len(refs))
	return true
}
