// Cluster-mode load: with -coord, loadgen drives an alscoord control
// plane instead of individual daemons — batches go through POST
// /v2/batches (tenant-tagged, chunked, 503 backpressure honoured) and,
// with -webhook, a local callback sink subscribes to every hash before
// anything is submitted and the run fails unless each hash is delivered
// EXACTLY once with a valid HMAC signature. That sink is the
// exactly-once-per-hash oracle the webhook subsystem is judged by.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"strings"
	"sync"
	"time"

	"repro/internal/coord"
	"repro/internal/exp"
	"repro/internal/service"
)

// clusterConfig is the -coord mode's knob set.
type clusterConfig struct {
	coord      string
	batchJobs  int
	chunk      int
	webhook    bool
	tenant     string
	circuit    string
	metric     string
	budget     float64
	seed       int64
	timeout    time.Duration
	sloP99     time.Duration
	sloErrRate float64
}

// sink is the local webhook receiver: it verifies every envelope's
// signature against the subscription secret and counts deliveries per
// hash — the exactly-once assertion is a map inspection at the end.
type sink struct {
	secret string
	mu     sync.Mutex
	// deliveries counts signed, decodable envelopes per hash; badSig and
	// badBody count rejected POSTs (any nonzero fails the run).
	deliveries map[string]int
	badSig     int
	badBody    int
}

func (s *sink) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(io.LimitReader(r.Body, 1<<20))
	if err != nil {
		http.Error(w, "read", http.StatusBadRequest)
		return
	}
	if !coord.VerifySignature([]byte(s.secret), body, r.Header.Get(coord.SignatureHeader)) {
		s.mu.Lock()
		s.badSig++
		s.mu.Unlock()
		http.Error(w, "bad signature", http.StatusForbidden)
		return
	}
	var env coord.Envelope
	if err := json.Unmarshal(body, &env); err != nil || env.Hash == "" {
		s.mu.Lock()
		s.badBody++
		s.mu.Unlock()
		http.Error(w, "bad envelope", http.StatusBadRequest)
		return
	}
	s.mu.Lock()
	s.deliveries[env.Hash]++
	s.mu.Unlock()
	w.WriteHeader(http.StatusOK)
}

// runCluster is the -coord mode entry point; returns the process exit
// code.
func runCluster(cfg clusterConfig, stdout, stderr io.Writer) int {
	ctx, cancel := context.WithTimeout(context.Background(), cfg.timeout)
	defer cancel()
	client := &http.Client{Timeout: 30 * time.Second}

	// Build the job matrix: unique seeds make unique cells; every chunk of
	// work is identified by content hash exactly as the cluster sees it.
	jobs := make([]exp.Job, 0, cfg.batchJobs)
	hashes := make([]string, 0, cfg.batchJobs)
	for i := 0; i < cfg.batchJobs; i++ {
		j := exp.Job{
			Circuit: cfg.circuit,
			Method:  "dcgwo",
			Metric:  cfg.metric,
			Budget:  cfg.budget,
			Scale:   "quick",
			Seed:    cfg.seed + int64(i),
		}
		// The canonical hash (not j.Hash() of the alias-spelled spec) is
		// what the cluster indexes by and what webhook envelopes carry.
		_, h, err := service.CanonicalJobSpec(j)
		if err != nil {
			fmt.Fprintf(stderr, "loadgen: hash: %v\n", err)
			return 1
		}
		jobs = append(jobs, j)
		hashes = append(hashes, h)
	}

	// The webhook sink subscribes BEFORE anything is submitted, so every
	// result must arrive by push — polling is only the fallback clock.
	var (
		snk    *sink
		subID  string
		lsn    net.Listener
		server *http.Server
	)
	if cfg.webhook {
		var err error
		lsn, err = net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			fmt.Fprintf(stderr, "loadgen: webhook sink listen: %v\n", err)
			return 1
		}
		snk = &sink{secret: fmt.Sprintf("loadgen-%d", cfg.seed), deliveries: map[string]int{}}
		server = &http.Server{Handler: snk}
		go server.Serve(lsn) //nolint:errcheck // closed at the end of the run
		defer server.Close()

		sub := map[string]any{
			"url":    "http://" + lsn.Addr().String() + "/hook",
			"secret": snk.secret,
			"hashes": hashes,
		}
		raw, _ := json.Marshal(sub)
		resp, err := client.Post(cfg.coord+"/v2/subscriptions", "application/json", bytes.NewReader(raw))
		if err != nil {
			fmt.Fprintf(stderr, "loadgen: subscribe: %v\n", err)
			return 1
		}
		var sv struct {
			ID string `json:"id"`
		}
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
		resp.Body.Close()
		if resp.StatusCode != http.StatusCreated || json.Unmarshal(body, &sv) != nil || sv.ID == "" {
			fmt.Fprintf(stderr, "loadgen: subscribe: HTTP %d: %.200s\n", resp.StatusCode, body)
			return 1
		}
		subID = sv.ID
		fmt.Fprintf(stdout, "loadgen: webhook sink %s subscribed as %s (%d hashes)\n",
			lsn.Addr().String(), subID, len(hashes))
	}

	// Submit in chunks; 503 is backpressure (tenant quota or draining) and
	// follows the same back-off-and-resubmit contract as /v2/jobs.
	rng := rand.New(rand.NewSource(cfg.seed))
	var (
		lat     []time.Duration
		retries int
	)
	start := time.Now()
	for at := 0; at < len(jobs); at += cfg.chunk {
		end := at + cfg.chunk
		if end > len(jobs) {
			end = len(jobs)
		}
		raw, _ := json.Marshal(map[string]any{
			"jobs":   jobs[at:end],
			"tenant": cfg.tenant,
		})
		for {
			begin := time.Now()
			req, err := http.NewRequestWithContext(ctx, http.MethodPost, cfg.coord+"/v2/batches", bytes.NewReader(raw))
			if err != nil {
				fmt.Fprintf(stderr, "loadgen: batch: %v\n", err)
				return 1
			}
			req.Header.Set("Content-Type", "application/json")
			resp, err := client.Do(req)
			if err != nil {
				fmt.Fprintf(stderr, "loadgen: batch: %v\n", err)
				return 1
			}
			body, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
			resp.Body.Close()
			if resp.StatusCode == http.StatusServiceUnavailable {
				retries++
				select {
				case <-ctx.Done():
					fmt.Fprintf(stderr, "loadgen: batch: deadline exceeded while backing off\n")
					return 1
				case <-time.After(time.Duration(50+rng.Intn(200)) * time.Millisecond):
				}
				continue
			}
			if resp.StatusCode != http.StatusAccepted {
				fmt.Fprintf(stderr, "loadgen: batch: HTTP %d: %.200s\n", resp.StatusCode, body)
				return 1
			}
			lat = append(lat, time.Since(begin))
			break
		}
	}

	// Wait for every hash to reach a terminal state via the job API; with
	// -webhook the deliveries must also all land.
	done := map[string]bool{}
	for len(done) < len(hashes) {
		if ctx.Err() != nil {
			fmt.Fprintf(stderr, "loadgen: %d/%d cells finished before the deadline\n", len(done), len(hashes))
			return 1
		}
		for _, h := range hashes {
			if done[h] {
				continue
			}
			resp, err := client.Get(cfg.coord + "/v1/jobs/" + h)
			if err != nil {
				fmt.Fprintf(stderr, "loadgen: poll %s: %v\n", h, err)
				return 1
			}
			body, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				continue // not indexed yet (coordinator restart); keep polling
			}
			var v struct {
				Status string `json:"status"`
				Error  string `json:"error"`
			}
			if json.Unmarshal(body, &v) != nil {
				fmt.Fprintf(stderr, "loadgen: poll %s: undecodable response\n", h)
				return 1
			}
			switch v.Status {
			case "done":
				done[h] = true
			case "failed":
				fmt.Fprintf(stderr, "loadgen: cell %s failed: %s\n", h, v.Error)
				return 1
			}
		}
		time.Sleep(100 * time.Millisecond)
	}
	elapsed := time.Since(start)

	ok := true
	if cfg.webhook {
		// Deliveries are asynchronous to the done transition; give the
		// retry/backoff machinery a bounded grace period to flush.
		deadline := time.Now().Add(30 * time.Second)
		for {
			snk.mu.Lock()
			got := len(snk.deliveries)
			snk.mu.Unlock()
			if got >= len(hashes) || time.Now().After(deadline) || ctx.Err() != nil {
				break
			}
			time.Sleep(100 * time.Millisecond)
		}
		snk.mu.Lock()
		for _, h := range hashes {
			switch n := snk.deliveries[h]; {
			case n == 0:
				fmt.Fprintf(stderr, "loadgen: webhook: hash %s never delivered\n", h)
				ok = false
			case n > 1:
				fmt.Fprintf(stderr, "loadgen: webhook: hash %s delivered %d times (want exactly 1)\n", h, n)
				ok = false
			}
		}
		if extra := len(snk.deliveries) - len(hashes); extra > 0 {
			fmt.Fprintf(stderr, "loadgen: webhook: %d deliveries for unsubscribed hashes\n", extra)
			ok = false
		}
		if snk.badSig > 0 || snk.badBody > 0 {
			fmt.Fprintf(stderr, "loadgen: webhook: %d bad signatures, %d bad envelopes\n", snk.badSig, snk.badBody)
			ok = false
		}
		snk.mu.Unlock()
	}

	var worst time.Duration
	for _, d := range lat {
		if d > worst {
			worst = d
		}
	}
	fmt.Fprintf(stdout, "loadgen: cluster run: %d cells in %d batch(es) done in %v (batch retries=%d, slowest submit %v)\n",
		len(hashes), (len(jobs)+cfg.chunk-1)/cfg.chunk, elapsed.Round(time.Millisecond),
		retries, worst.Round(time.Microsecond))
	if cfg.webhook && ok {
		fmt.Fprintf(stdout, "loadgen: webhook: %d/%d hashes delivered exactly once, all signatures valid\n",
			len(hashes), len(hashes))
	}
	if worst > cfg.sloP99 {
		fmt.Fprintf(stderr, "loadgen: SLO VIOLATION: slowest batch submit %v > %v\n", worst, cfg.sloP99)
		ok = false
	}
	if !ok {
		return 1
	}
	fmt.Fprintln(stdout, "loadgen: all SLOs met")
	return 0
}

// trimBase normalizes a coordinator URL flag value.
func trimBase(u string) string {
	u = strings.TrimSpace(u)
	if u != "" && !strings.Contains(u, "://") {
		u = "http://" + u
	}
	return strings.TrimRight(u, "/")
}
