// Command alsd serves the DCGWO-ALS flow over HTTP: clients submit a
// named benchmark or an uploaded structural-Verilog netlist with an error
// constraint, the daemon runs the optimization on a bounded worker pool,
// and identical requests — across restarts — are answered from the
// persistent result store without recomputation.
//
// Usage:
//
//	alsd -addr :8080 -store alsd-results.jsonl -workers 2
//
// The store is pluggable (-store-backend; docs/STORAGE.md): "jsonl" (the
// default file format), "embedded" (a single-file binary log safe for
// several daemons on one host), "remote" (another alsd's /store surface —
// point a worker fleet's satellites at one hub with
// -store-backend remote -store-remote http://hub:8080 and every result
// any worker computes is a cache hit for all of them), or "auto" (detect
// from the -store target). Every daemon also serves its own store at
// GET/PUT /store/{hash} for others to share.
//
// Accepted submissions are write-ahead logged (-wal): a daemon killed
// hard with jobs queued or running re-enqueues them on restart — already
// persisted results are answered from the store bit-identically, only
// genuinely lost work runs again. "-wal auto" derives <store>.wal next to
// a local store file; an empty -wal disables durability.
//
// The preferred client surface is /v2: submit, stream the run's events
// (per-iteration progress and every improved solution, over SSE), then
// read the result with its delay/error/area trade-off front:
//
//	curl -X POST localhost:8080/v2/jobs \
//	     -d '{"circuit":"Adder16","metric":"nmed","budget":0.0244}'
//	curl -N localhost:8080/v2/jobs/f000001/events
//	curl localhost:8080/v2/jobs/f000001/result
//	curl 'localhost:8080/v2/jobs?offset=0&limit=20'
//	curl -X POST localhost:8080/v2/jobs/f000001/cancel
//
// /v2 errors carry machine-readable codes ({"error":{"code":...}}), e.g.
// unknown_benchmark (404), infeasible (422), queue_full (503).
//
// The legacy /v1 polling API keeps serving unchanged (same job table,
// same cache, same JSON shapes):
//
//	curl -X POST localhost:8080/v1/flows \
//	     -d '{"circuit":"Adder16","metric":"nmed","budget":0.0244}'
//	curl localhost:8080/v1/flows/f000001
//	curl localhost:8080/v1/flows/f000001/result
//	curl -X POST localhost:8080/v1/flows/f000001/cancel
//
// Every alsd is also a distributed-sweep worker with no extra
// configuration: the same handler exposes the worker job API
// (POST /v1/jobs batch submit by canonical job spec, GET /v1/jobs/{hash}
// result fetch by content hash, GET /healthz readiness) that
// `experiments -workers http://host:8080,...` drives. Sweep cells and
// interactive submissions share one hash-keyed store, so either fills the
// cache for the other.
//
// Observability (docs/OPERATIONS.md has the full reference):
//
//	GET /metrics          Prometheus text exposition — queue depth, job
//	                      states and latency, evaluation-cache rates,
//	                      store traffic, SSE subscribers, HTTP by route
//	GET /debug/traces     recent request/job span trees; ?trace= one
//	                      trace, ?min_ms= slow ones, ?format=jsonl for
//	                      cmd/tracecat (-trace-buf 0 disables)
//	GET /debug/pprof/     live CPU/heap/goroutine profiles (-pprof only)
//
// Logs are structured (log/slog): -log-format picks text or json,
// -log-level the verbosity. Every HTTP response carries an X-Request-Id
// that the debug-level access log repeats, and every job log line carries
// its job_id.
//
// On SIGINT/SIGTERM the daemon stops accepting work, lets in-flight jobs
// finish (up to -drain-timeout, after which they are cancelled at their
// next iteration boundary), flushes the store, and exits 0.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/service"
	"repro/internal/store"
	"repro/internal/trace"
)

func main() {
	var (
		addr         = flag.String("addr", ":8080", "HTTP listen address")
		storePath    = flag.String("store", "alsd-results.jsonl", "persistent result store file (empty disables persistence)")
		storeBackend = flag.String("store-backend", "auto", "store backend: auto, jsonl, embedded or remote")
		storeRemote  = flag.String("store-remote", "", "base URL of another alsd whose /store to use as the result store (implies -store-backend remote)")
		walPath      = flag.String("wal", "auto", "submission write-ahead log: a path, \"auto\" (derive <store>.wal), or empty to disable durability")
		workers      = flag.Int("workers", 2, "concurrent flow jobs")
		queueDepth   = flag.Int("queue", 64, "maximum queued jobs")
		evalWorkers  = flag.Int("eval-workers", 0, "per-flow evaluation pool (0 = GOMAXPROCS/workers)")
		maxJobs      = flag.Int("max-jobs", 0, "in-memory job table bound; oldest finished jobs are evicted beyond it (0 = default 1024)")
		drainTimeout = flag.Duration("drain-timeout", 30*time.Second, "how long to let in-flight jobs finish on shutdown")
		logFormat    = flag.String("log-format", "text", "log output format: text or json")
		logLevel     = flag.String("log-level", "info", "log verbosity: debug, info, warn or error (debug adds the per-request access log)")
		withPprof    = flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/ (profiles expose internals; keep off on untrusted networks)")
		traceBuf     = flag.Int("trace-buf", trace.DefaultCapacity, "span ring-buffer capacity for GET /debug/traces (0 disables tracing)")
		register     = flag.String("register", "", "coordinator base URL to register with (alscoord); heartbeats carry this daemon's queue depth and evals/sec")
		advertise    = flag.String("advertise", "", "base URL the coordinator should reach this daemon at (default http://127.0.0.1<addr> when -addr is a bare port)")
	)
	flag.Parse()

	logger, err := newLogger(*logFormat, *logLevel)
	if err != nil {
		fmt.Fprintln(os.Stderr, "alsd:", err)
		os.Exit(2)
	}

	// Resolve the store target: -store-remote names a hub daemon and wins
	// over -store; otherwise -store names a local file interpreted per
	// -store-backend ("auto" detects: URL → remote, magic header →
	// embedded, anything else → jsonl).
	target, kind := *storePath, *storeBackend
	if *storeRemote != "" {
		if kind != "auto" && kind != "remote" {
			logger.Error("conflicting flags", "error", "-store-remote requires -store-backend remote (or auto)")
			os.Exit(2)
		}
		target, kind = *storeRemote, "remote"
	}
	var st *store.Store
	if target != "" {
		st, err = store.OpenKind(kind, target)
		if err != nil {
			logger.Error("store open failed", "target", target, "error", err)
			os.Exit(1)
		}
		logger.Info("store opened", "target", st.Path(), "backend", st.Kind(),
			"results", st.Len(), "corrupt_records", st.Corrupt())
	}

	// The WAL lives next to a local store file; with a remote (or no)
	// store, "auto" still enables durability under a fixed local name —
	// queued work is this daemon's promise regardless of where results go.
	wp := *walPath
	if wp == "auto" {
		wp = "alsd-queue.wal"
		if st != nil && st.Kind() != "remote" {
			wp = st.Path() + ".wal"
		}
	}
	var wal *service.WAL
	if wp != "" {
		wal, err = service.OpenWAL(wp)
		if err != nil {
			logger.Error("wal open failed", "path", wp, "error", err)
			os.Exit(1)
		}
		logger.Info("wal opened", "path", wp,
			"pending", len(wal.Pending()), "corrupt_lines", wal.Corrupt())
	}

	var tracer *trace.Tracer
	if *traceBuf > 0 {
		tracer = trace.New(trace.Options{Service: "alsd" + *addr, Capacity: *traceBuf})
		logger.Info("tracing enabled", "path", "/debug/traces", "capacity", *traceBuf)
	}

	svc := service.New(service.Options{
		Store:       st,
		Workers:     *workers,
		QueueDepth:  *queueDepth,
		EvalWorkers: *evalWorkers,
		MaxJobs:     *maxJobs,
		Logger:      logger,
		Tracer:      tracer,
		WAL:         wal,
	})

	root := http.NewServeMux()
	root.Handle("/", svc.Handler())
	if *withPprof {
		// DefaultServeMux registration from the pprof import is unused;
		// mount the handlers explicitly on our own mux.
		root.HandleFunc("/debug/pprof/", pprof.Index)
		root.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		root.HandleFunc("/debug/pprof/profile", pprof.Profile)
		root.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		root.HandleFunc("/debug/pprof/trace", pprof.Trace)
		logger.Info("pprof enabled", "path", "/debug/pprof/")
	}
	hs := &http.Server{Addr: *addr, Handler: root}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	logger.Info("serving", "addr", *addr, "workers", *workers, "queue", *queueDepth)

	var hb *heartbeater
	if *register != "" {
		self := *advertise
		if self == "" {
			if len(*addr) > 0 && (*addr)[0] == ':' {
				self = "http://127.0.0.1" + *addr
			} else {
				self = "http://" + *addr
			}
		}
		hb = newHeartbeater(*register, self, svc, logger)
		go hb.run(ctx)
	}

	select {
	case err := <-errc:
		logger.Error("listener died", "error", err)
		os.Exit(1)
	case <-ctx.Done():
	}
	stop()
	logger.Info("signal received, draining", "timeout", (*drainTimeout).String())

	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if hb != nil {
		hb.deregister(shutdownCtx)
	}
	if err := hs.Shutdown(shutdownCtx); err != nil {
		logger.Warn("http shutdown", "error", err)
	}
	if err := svc.Drain(shutdownCtx); err != nil {
		logger.Warn("drain", "error", err)
	}
	if wal != nil {
		if err := wal.Close(); err != nil {
			logger.Warn("wal close", "error", err)
		}
	}
	if st != nil {
		if err := st.Close(); err != nil {
			logger.Warn("store close", "error", err)
		}
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		logger.Warn("http server", "error", err)
	}
	fmt.Fprintln(os.Stderr, "alsd: drained cleanly")
}

// newLogger builds the process logger from the -log-format and -log-level
// flags. Both handlers write to stderr, keeping stdout free for tooling.
func newLogger(format, level string) (*slog.Logger, error) {
	var lv slog.Level
	if err := lv.UnmarshalText([]byte(level)); err != nil {
		return nil, fmt.Errorf("bad -log-level %q (want debug, info, warn or error)", level)
	}
	opts := &slog.HandlerOptions{Level: lv}
	switch format {
	case "text":
		return slog.New(slog.NewTextHandler(os.Stderr, opts)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(os.Stderr, opts)), nil
	default:
		return nil, fmt.Errorf("bad -log-format %q (want text or json)", format)
	}
}
