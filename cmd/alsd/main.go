// Command alsd serves the DCGWO-ALS flow over HTTP: clients submit a
// named benchmark or an uploaded structural-Verilog netlist with an error
// constraint, the daemon runs the optimization on a bounded worker pool,
// and identical requests — across restarts — are answered from the
// persistent result store without recomputation.
//
// Usage:
//
//	alsd -addr :8080 -store alsd-results.jsonl -workers 2
//
// The preferred client surface is /v2: submit, stream the run's events
// (per-iteration progress and every improved solution, over SSE), then
// read the result with its delay/error/area trade-off front:
//
//	curl -X POST localhost:8080/v2/jobs \
//	     -d '{"circuit":"Adder16","metric":"nmed","budget":0.0244}'
//	curl -N localhost:8080/v2/jobs/f000001/events
//	curl localhost:8080/v2/jobs/f000001/result
//	curl 'localhost:8080/v2/jobs?offset=0&limit=20'
//	curl -X POST localhost:8080/v2/jobs/f000001/cancel
//
// /v2 errors carry machine-readable codes ({"error":{"code":...}}), e.g.
// unknown_benchmark (404), infeasible (422), queue_full (503).
//
// The legacy /v1 polling API keeps serving unchanged (same job table,
// same cache, same JSON shapes):
//
//	curl -X POST localhost:8080/v1/flows \
//	     -d '{"circuit":"Adder16","metric":"nmed","budget":0.0244}'
//	curl localhost:8080/v1/flows/f000001
//	curl localhost:8080/v1/flows/f000001/result
//	curl -X POST localhost:8080/v1/flows/f000001/cancel
//
// Every alsd is also a distributed-sweep worker with no extra
// configuration: the same handler exposes the worker job API
// (POST /v1/jobs batch submit by canonical job spec, GET /v1/jobs/{hash}
// result fetch by content hash, GET /healthz readiness) that
// `experiments -workers http://host:8080,...` drives. Sweep cells and
// interactive submissions share one hash-keyed store, so either fills the
// cache for the other.
//
// On SIGINT/SIGTERM the daemon stops accepting work, lets in-flight jobs
// finish (up to -drain-timeout, after which they are cancelled at their
// next iteration boundary), flushes the store, and exits 0.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/service"
	"repro/internal/store"
)

func main() {
	var (
		addr         = flag.String("addr", ":8080", "HTTP listen address")
		storePath    = flag.String("store", "alsd-results.jsonl", "persistent result store (JSONL; empty disables persistence)")
		workers      = flag.Int("workers", 2, "concurrent flow jobs")
		queueDepth   = flag.Int("queue", 64, "maximum queued jobs")
		evalWorkers  = flag.Int("eval-workers", 0, "per-flow evaluation pool (0 = GOMAXPROCS/workers)")
		maxJobs      = flag.Int("max-jobs", 0, "in-memory job table bound; oldest finished jobs are evicted beyond it (0 = default 1024)")
		drainTimeout = flag.Duration("drain-timeout", 30*time.Second, "how long to let in-flight jobs finish on shutdown")
	)
	flag.Parse()
	log.SetPrefix("alsd: ")
	log.SetFlags(log.LstdFlags)

	var st *store.Store
	if *storePath != "" {
		var err error
		st, err = store.Open(*storePath)
		if err != nil {
			log.Fatal(err)
		}
		if n := st.Corrupt(); n > 0 {
			log.Printf("store %s: skipped %d corrupt line(s), kept %d result(s)", *storePath, n, st.Len())
		} else {
			log.Printf("store %s: %d cached result(s)", *storePath, st.Len())
		}
	}

	svc := service.New(service.Options{
		Store:       st,
		Workers:     *workers,
		QueueDepth:  *queueDepth,
		EvalWorkers: *evalWorkers,
		MaxJobs:     *maxJobs,
		Logf:        log.Printf,
	})
	hs := &http.Server{Addr: *addr, Handler: svc.Handler()}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	log.Printf("serving on %s (%d worker(s), queue %d)", *addr, *workers, *queueDepth)

	select {
	case err := <-errc:
		log.Fatal(err) // the listener died before any signal
	case <-ctx.Done():
	}
	stop()
	log.Printf("signal received, draining (timeout %v)", *drainTimeout)

	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := hs.Shutdown(shutdownCtx); err != nil {
		log.Printf("http shutdown: %v", err)
	}
	if err := svc.Drain(shutdownCtx); err != nil {
		log.Printf("%v", err)
	}
	if st != nil {
		if err := st.Close(); err != nil {
			log.Printf("store close: %v", err)
		}
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Printf("http server: %v", err)
	}
	fmt.Fprintln(os.Stderr, "alsd: drained cleanly")
}
