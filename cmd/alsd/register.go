// Cluster membership for alsd: with -register, the daemon joins an
// alscoord fleet and stays live by heartbeating its queue depth and
// evaluation throughput (the same figures its own /metrics exposes). A
// coordinator that forgot us (restart, expiry) answers a heartbeat with
// 404 and we simply register again; a clean shutdown deregisters so the
// coordinator fails our cells over immediately instead of waiting out
// the expiry window.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"log/slog"
	"net/http"
	"time"

	"repro/internal/service"
)

// heartbeater keeps one alsd registered with a coordinator.
type heartbeater struct {
	coord  string // coordinator base URL, no trailing slash
	self   string // our advertised base URL
	svc    *service.Server
	log    *slog.Logger
	client *http.Client

	id         string
	interval   time.Duration
	lastEvals  int64
	lastSample time.Time
}

func newHeartbeater(coordURL, self string, svc *service.Server, log *slog.Logger) *heartbeater {
	for len(coordURL) > 0 && coordURL[len(coordURL)-1] == '/' {
		coordURL = coordURL[:len(coordURL)-1]
	}
	return &heartbeater{
		coord:  coordURL,
		self:   self,
		svc:    svc,
		log:    log,
		client: &http.Client{Timeout: 10 * time.Second},
	}
}

// post sends one JSON body and decodes the response into out (when
// non-nil), returning the status code.
func (h *heartbeater) post(ctx context.Context, path string, body, out any) (int, error) {
	raw, err := json.Marshal(body)
	if err != nil {
		return 0, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, h.coord+path, bytes.NewReader(raw))
	if err != nil {
		return 0, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := h.client.Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if out != nil && resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			return resp.StatusCode, err
		}
	}
	return resp.StatusCode, nil
}

// registerOnce announces this daemon and records the id and cadence the
// coordinator assigns.
func (h *heartbeater) registerOnce(ctx context.Context) error {
	var resp struct {
		ID                string `json:"id"`
		HeartbeatInterval string `json:"heartbeat_interval"`
		ExpireAfter       int    `json:"expire_after"`
	}
	code, err := h.post(ctx, "/cluster/register", map[string]string{"url": h.self}, &resp)
	if err != nil {
		return err
	}
	if code != http.StatusOK {
		return fmt.Errorf("coordinator answered HTTP %d", code)
	}
	h.id = resp.ID
	h.interval = 2 * time.Second
	if d, err := time.ParseDuration(resp.HeartbeatInterval); err == nil && d > 0 {
		h.interval = d
	}
	h.lastEvals = h.svc.EvalsTotal()
	h.lastSample = time.Now()
	h.log.Info("registered with coordinator", "coord", h.coord, "worker_id", h.id,
		"advertise", h.self, "interval", h.interval.String())
	return nil
}

// run registers (retrying until the coordinator is reachable) and then
// heartbeats until ctx ends. A 404 means the coordinator no longer knows
// us — re-register and carry on.
func (h *heartbeater) run(ctx context.Context) {
	for h.registerOnce(ctx) != nil {
		select {
		case <-ctx.Done():
			return
		case <-time.After(time.Second):
		}
	}
	for {
		select {
		case <-ctx.Done():
			return
		case <-time.After(h.interval):
		}
		evals := h.svc.EvalsTotal()
		now := time.Now()
		rate := 0.0
		if dt := now.Sub(h.lastSample).Seconds(); dt > 0 {
			rate = float64(evals-h.lastEvals) / dt
		}
		h.lastEvals, h.lastSample = evals, now
		code, err := h.post(ctx, "/cluster/heartbeat", map[string]any{
			"id":            h.id,
			"queue_depth":   h.svc.QueueDepth(),
			"evals_total":   evals,
			"evals_per_sec": rate,
		}, nil)
		switch {
		case err != nil:
			h.log.Warn("heartbeat failed", "coord", h.coord, "error", err)
		case code == http.StatusNotFound:
			h.log.Warn("coordinator forgot us, re-registering", "coord", h.coord)
			for h.registerOnce(ctx) != nil {
				select {
				case <-ctx.Done():
					return
				case <-time.After(time.Second):
				}
			}
		case code != http.StatusOK:
			h.log.Warn("heartbeat rejected", "coord", h.coord, "status", code)
		}
	}
}

// deregister tells the coordinator we are shutting down cleanly so it
// fails our cells over now rather than after the expiry window.
func (h *heartbeater) deregister(ctx context.Context) {
	if h.id == "" {
		return
	}
	if _, err := h.post(ctx, "/cluster/deregister", map[string]string{"id": h.id}, nil); err != nil {
		h.log.Warn("deregister failed", "coord", h.coord, "error", err)
		return
	}
	h.log.Info("deregistered from coordinator", "coord", h.coord, "worker_id", h.id)
}
