// Command alsflow runs the complete timing-driven ALS flow on one circuit:
// representation → DCGWO (or a baseline) → post-optimization, and writes
// the final approximate netlist as structural Verilog.
//
// Usage:
//
//	alsflow -bench Adder16 -metric nmed -budget 0.0244 -out approx.v
//	alsflow -in design.v -metric er -budget 0.05 -method hedals
//	alsflow -bench c6288 -scale paper -areacon 1.1
package main

import (
	"flag"
	"fmt"
	"os"

	als "repro"
	"repro/internal/netlist"
)

func main() {
	var (
		bench   = flag.String("bench", "", "built-in benchmark name (see -list)")
		in      = flag.String("in", "", "structural Verilog input file")
		out     = flag.String("out", "", "write the final approximate netlist here (default: stdout summary only)")
		metric  = flag.String("metric", "er", "error metric: er|nmed")
		budget  = flag.Float64("budget", 0.05, "error budget (e.g. 0.05 = 5% ER)")
		method  = flag.String("method", "dcgwo", "optimizer: dcgwo|sasimi|vaacs|hedals|gwo")
		scale   = flag.String("scale", "quick", "run budget: quick|paper")
		areacon = flag.Float64("areacon", 1.0, "area constraint as a ratio of the accurate area")
		seed    = flag.Int64("seed", 1, "random seed")
		list    = flag.Bool("list", false, "list built-in benchmarks and exit")
	)
	flag.Parse()

	if *list {
		for _, n := range als.BenchmarkNames() {
			fmt.Println(n)
		}
		return
	}

	circuit, err := loadCircuit(*bench, *in)
	if err != nil {
		fatal(err)
	}

	cfg := als.FlowConfig{
		ErrorBudget:  *budget,
		AreaConRatio: *areacon,
		Seed:         *seed,
	}
	switch *metric {
	case "er":
		cfg.Metric = als.MetricER
	case "nmed":
		cfg.Metric = als.MetricNMED
	default:
		fatal(fmt.Errorf("unknown metric %q", *metric))
	}
	switch *method {
	case "dcgwo":
		cfg.Method = als.MethodDCGWO
	case "sasimi":
		cfg.Method = als.MethodVecbeeSasimi
	case "vaacs":
		cfg.Method = als.MethodVaACS
	case "hedals":
		cfg.Method = als.MethodHEDALS
	case "gwo":
		cfg.Method = als.MethodSingleChaseGWO
	default:
		fatal(fmt.Errorf("unknown method %q", *method))
	}
	switch *scale {
	case "quick":
		cfg.Scale = als.ScaleQuick
	case "paper":
		cfg.Scale = als.ScalePaper
	default:
		fatal(fmt.Errorf("unknown scale %q", *scale))
	}

	res, err := als.Flow(circuit, als.NewLibrary(), cfg)
	if err != nil {
		fatal(err)
	}

	fmt.Printf("circuit   : %s (%d gates)\n", res.Circuit, circuit.NumPhysical())
	fmt.Printf("method    : %s under %s <= %.4g\n", res.Method, cfg.Metric, cfg.ErrorBudget)
	fmt.Printf("CPD       : %.2f ps -> %.2f ps   (Ratio_cpd = %.4f)\n", res.CPDOri, res.CPDFac, res.RatioCPD)
	fmt.Printf("area      : %.2f um2 -> %.2f um2 (budget %.2f)\n", res.AreaOri, res.AreaFinal, res.AreaCon)
	fmt.Printf("error     : %.5f\n", res.Err)
	fmt.Printf("runtime   : %v (%d evaluations)\n", res.Runtime, res.Evaluations)

	if *out != "" {
		if err := os.WriteFile(*out, []byte(als.WriteVerilog(res.Final)), 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote     : %s\n", *out)
	}
}

func loadCircuit(bench, in string) (*netlist.Circuit, error) {
	switch {
	case bench != "" && in != "":
		return nil, fmt.Errorf("pass either -bench or -in, not both")
	case bench != "":
		for _, n := range als.BenchmarkNames() {
			if n == bench {
				return als.Benchmark(bench), nil
			}
		}
		return nil, fmt.Errorf("unknown benchmark %q (use -list)", bench)
	case in != "":
		src, err := os.ReadFile(in)
		if err != nil {
			return nil, err
		}
		return als.ParseVerilog(string(src))
	}
	return nil, fmt.Errorf("pass -bench <name> or -in <file.v>")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "alsflow:", err)
	os.Exit(1)
}
