// Command alsflow runs the complete timing-driven ALS flow on one circuit:
// representation → DCGWO (or a baseline) → post-optimization, and writes
// the final approximate netlist as structural Verilog. It drives the
// session API, so it can stream the optimizer's live progress (-progress)
// and print the delay/error/area trade-off front (-front) instead of only
// the single best solution.
//
// Usage:
//
//	alsflow -bench Adder16 -metric nmed -budget 0.0244 -out approx.v
//	alsflow -in design.v -metric er -budget 0.05 -method hedals
//	alsflow -bench c6288 -scale paper -areacon 1.1
//	alsflow -bench c880 -metric er -budget 0.05 -progress -front 5
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	als "repro"
	"repro/internal/netlist"
)

func main() {
	var (
		bench    = flag.String("bench", "", "built-in benchmark name (see -list)")
		in       = flag.String("in", "", "structural Verilog input file")
		out      = flag.String("out", "", "write the final approximate netlist here (default: stdout summary only)")
		metric   = flag.String("metric", "er", "error metric: er|nmed")
		budget   = flag.Float64("budget", 0.05, "error budget (e.g. 0.05 = 5% ER)")
		method   = flag.String("method", "dcgwo", "optimizer: dcgwo|sasimi|vaacs|hedals|gwo")
		scale    = flag.String("scale", "quick", "run budget: quick|paper")
		areacon  = flag.Float64("areacon", 1.0, "area constraint as a ratio of the accurate area")
		seed     = flag.Int64("seed", 1, "random seed")
		front    = flag.Int("front", 0, "print up to this many trade-off front solutions (0 = best only)")
		progress = flag.Bool("progress", false, "stream per-iteration progress to stderr")
		list     = flag.Bool("list", false, "list built-in benchmarks and exit")
	)
	flag.Parse()

	if *list {
		for _, n := range als.BenchmarkNames() {
			fmt.Println(n)
		}
		return
	}

	circuit, err := loadCircuit(*bench, *in)
	if err != nil {
		fatal(err)
	}

	m, err := als.ParseMetric(*metric)
	if err != nil {
		fatal(err)
	}
	mth, err := als.ParseMethod(*method)
	if err != nil {
		fatal(err)
	}
	sc, err := als.ParseScale(*scale)
	if err != nil {
		fatal(err)
	}
	opts := []als.Option{
		als.WithMetric(m),
		als.WithErrorBudget(*budget),
		als.WithMethod(mth),
		als.WithScale(sc),
		als.WithAreaConRatio(*areacon),
		als.WithSeed(*seed),
	}
	if *front > 0 {
		opts = append(opts, als.WithTopK(*front))
	}
	sess, err := als.NewSession(circuit, als.NewLibrary(), opts...)
	if err != nil {
		fatal(err)
	}

	var res *als.FlowResult
	var tradeoff als.Front
	for ev, err := range sess.Run(context.Background()) {
		if err != nil {
			fatal(err)
		}
		switch ev.Kind {
		case als.EventProgress:
			if *progress {
				fmt.Fprintf(os.Stderr, "iter %d/%d: best Ratio_cpd <= %.4f err=%.5g (%d evaluations)\n",
					ev.Progress.Iter, ev.Progress.Total, ev.Progress.BestRatioCPD,
					ev.Progress.BestErr, ev.Progress.Evaluations)
			}
		case als.EventImproved:
			if *progress {
				fmt.Fprintf(os.Stderr, "improved: Ratio_cpd <= %.4f err=%.5g area=%.2f\n",
					ev.Solution.RatioCPD, ev.Solution.Err, ev.Solution.Area)
			}
		case als.EventDone:
			res, tradeoff = ev.Result, ev.Front
		}
	}

	fmt.Printf("circuit   : %s (%d gates)\n", res.Circuit, circuit.NumPhysical())
	fmt.Printf("method    : %s under %s <= %.4g\n", res.Method, m, *budget)
	fmt.Printf("CPD       : %.2f ps -> %.2f ps   (Ratio_cpd = %.4f)\n", res.CPDOri, res.CPDFac, res.RatioCPD)
	fmt.Printf("area      : %.2f um2 -> %.2f um2 (budget %.2f)\n", res.AreaOri, res.AreaFinal, res.AreaCon)
	fmt.Printf("error     : %.5f\n", res.Err)
	fmt.Printf("runtime   : %v (%d evaluations)\n", res.Runtime, res.Evaluations)
	if *front > 0 {
		fmt.Printf("front     : %d solution(s)\n%s", len(tradeoff), tradeoff)
	}

	if *out != "" {
		if err := os.WriteFile(*out, []byte(als.WriteVerilog(res.Final)), 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote     : %s\n", *out)
	}
}

func loadCircuit(bench, in string) (*netlist.Circuit, error) {
	switch {
	case bench != "" && in != "":
		return nil, fmt.Errorf("pass either -bench or -in, not both")
	case bench != "":
		c, err := als.BenchmarkByName(bench)
		if err != nil {
			return nil, fmt.Errorf("%w (use -list)", err)
		}
		return c, nil
	case in != "":
		src, err := os.ReadFile(in)
		if err != nil {
			return nil, err
		}
		return als.ParseVerilog(string(src))
	}
	return nil, fmt.Errorf("pass -bench <name> or -in <file.v>")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "alsflow:", err)
	os.Exit(1)
}
