// Command storectl inspects and migrates content-addressed result stores
// (internal/store) across every backend: JSONL files, embedded
// binary-log files, and the /store surface of a running alsd. It is the
// operational companion to docs/STORAGE.md.
//
// Usage:
//
//	storectl cat  <store>                dump as JSONL (valid store-file bytes)
//	storectl ls   <store>                list stored hashes, one per line
//	storectl copy <src> <dst>            copy every record from src to dst
//
// A <store> argument is a file path or an http(s) base URL; the backend
// is auto-detected (override with -backend / -dst-backend). Copy is the
// migration recipe between formats:
//
//	storectl copy results.jsonl results.emb -dst-backend embedded
//	storectl copy http://hub:8080 backup.jsonl
//	storectl cat results.emb > results.jsonl   # cat emits JSONL for any backend
//
// Copy is idempotent (last writer wins per hash) and additive: existing
// records in the destination are kept, identical hashes are overwritten.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/store"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("storectl", flag.ContinueOnError)
	srcBackend := fs.String("backend", "auto", "source backend: auto, jsonl, embedded or remote")
	dstBackend := fs.String("dst-backend", "auto", "destination backend for copy: auto, jsonl, embedded or remote")
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: storectl [flags] cat|ls <store>")
		fmt.Fprintln(os.Stderr, "       storectl [flags] copy <src> <dst>")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	// The flag package stops at the first positional argument; re-parse so
	// flags may follow the subcommand (storectl copy a b -dst-backend ...).
	var rest []string
	for tail := fs.Args(); len(tail) > 0; {
		if strings.HasPrefix(tail[0], "-") {
			if err := fs.Parse(tail); err != nil {
				return 2
			}
			tail = fs.Args()
			continue
		}
		rest = append(rest, tail[0])
		tail = tail[1:]
	}
	if len(rest) < 2 {
		fs.Usage()
		return 2
	}
	cmd := rest[0]

	src, err := store.OpenKind(*srcBackend, rest[1])
	if err != nil {
		fmt.Fprintln(os.Stderr, "storectl:", err)
		return 1
	}
	defer src.Close()

	switch cmd {
	case "cat":
		w := bufio.NewWriter(os.Stdout)
		if err := src.Export(w); err != nil {
			fmt.Fprintln(os.Stderr, "storectl:", err)
			return 1
		}
		if err := w.Flush(); err != nil {
			fmt.Fprintln(os.Stderr, "storectl:", err)
			return 1
		}
	case "ls":
		for _, h := range src.Hashes() {
			fmt.Println(h)
		}
	case "copy":
		if len(rest) != 3 {
			fs.Usage()
			return 2
		}
		dst, err := store.OpenKind(*dstBackend, rest[2])
		if err != nil {
			fmt.Fprintln(os.Stderr, "storectl:", err)
			return 1
		}
		n := 0
		err = src.Scan(func(hash string, payload json.RawMessage) error {
			if err := dst.PutRaw(hash, payload); err != nil {
				return err
			}
			n++
			return nil
		})
		if cerr := dst.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "storectl:", err)
			return 1
		}
		fmt.Fprintf(os.Stderr, "storectl: copied %d record(s) from %s (%s) to %s (%s)\n",
			n, src.Path(), src.Kind(), dst.Path(), dst.Kind())
	default:
		fs.Usage()
		return 2
	}
	return 0
}
