package main

import (
	"bytes"
	"context"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/exp"
	"repro/internal/service"
)

// runCLI invokes the command's run function with captured output.
func runCLI(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	return runCLIContext(t, context.Background(), args...)
}

// runCLIContext is runCLI with a caller-supplied context (for simulating
// a SIGINT/SIGTERM interruption, which main delivers as cancellation).
func runCLIContext(t *testing.T, ctx context.Context, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errb bytes.Buffer
	code = run(ctx, args, &out, &errb)
	return code, out.String(), errb.String()
}

func TestUnknownExperimentListsValidNamesAndExits2(t *testing.T) {
	code, _, stderr := runCLI(t, "-exp", "fig9")
	if code != 2 {
		t.Fatalf("exit code = %d, want 2", code)
	}
	if !strings.Contains(stderr, `unknown experiment "fig9"`) {
		t.Fatalf("stderr must name the bad value: %q", stderr)
	}
	for _, name := range exp.Experiments() {
		if !strings.Contains(stderr, name) {
			t.Fatalf("stderr must list valid experiment %q: %q", name, stderr)
		}
	}
	if !strings.Contains(stderr, "all") {
		t.Fatalf("stderr must mention the 'all' pseudo-experiment: %q", stderr)
	}
}

func TestUnknownScaleAndFormatExit2(t *testing.T) {
	if code, _, stderr := runCLI(t, "-scale", "huge"); code != 2 || !strings.Contains(stderr, "unknown scale") {
		t.Fatalf("bad scale: code=%d stderr=%q", code, stderr)
	}
	if code, _, stderr := runCLI(t, "-exp", "table1", "-format", "xml"); code != 2 || !strings.Contains(stderr, "unknown format") {
		t.Fatalf("bad format: code=%d stderr=%q", code, stderr)
	}
}

func TestResumeWithoutOutExits2(t *testing.T) {
	code, _, stderr := runCLI(t, "-exp", "table2", "-resume")
	if code != 2 || !strings.Contains(stderr, "-resume requires -out") {
		t.Fatalf("code=%d stderr=%q", code, stderr)
	}
}

func TestTable1FormatsRender(t *testing.T) {
	code, stdout, _ := runCLI(t, "-exp", "table1")
	if code != 0 || !strings.Contains(stdout, "TABLE I") || !strings.Contains(stdout, "Sqrt") {
		t.Fatalf("text: code=%d stdout=%q", code, stdout)
	}
	code, stdout, _ = runCLI(t, "-exp", "table1", "-format", "json")
	if code != 0 || !strings.Contains(stdout, `"experiment": "table1"`) {
		t.Fatalf("json: code=%d stdout=%q", code, stdout)
	}
	code, stdout, _ = runCLI(t, "-exp", "table1", "-format", "csv")
	if code != 0 || !strings.HasPrefix(stdout, "type,circuit,gates") {
		t.Fatalf("csv: code=%d stdout=%q", code, stdout)
	}
}

// cliMatrix is the cheapest real two-table run: one circuit per table, two
// methods, tiny budgets.
func cliMatrix(extra ...string) []string {
	return append([]string{
		"-circuits", "c880,Max16", "-seed", "3",
		"-pop", "6", "-iters", "3", "-vectors", "512",
	}, extra...)
}

func TestJSONOutputByteIdenticalAcrossJobs(t *testing.T) {
	code1, out1, _ := runCLI(t, cliMatrix("-exp", "table2", "-format", "json", "-jobs", "1")...)
	code8, out8, _ := runCLI(t, cliMatrix("-exp", "table2", "-format", "json", "-jobs", "8")...)
	if code1 != 0 || code8 != 0 {
		t.Fatalf("exit codes %d/%d", code1, code8)
	}
	if out1 != out8 {
		t.Fatalf("-jobs 1 and -jobs 8 JSON differ:\n%s\nvs\n%s", out1, out8)
	}
	if !strings.Contains(out1, `"circuit": "c880"`) {
		t.Fatalf("unexpected JSON: %s", out1)
	}
}

func TestOutDirResumeAndRenderedFiles(t *testing.T) {
	dir := t.TempDir()
	args := cliMatrix("-exp", "table3", "-format", "csv", "-out", dir)

	code, out1, stderr := runCLI(t, args...)
	if code != 0 {
		t.Fatalf("first run: %d, stderr %q", code, stderr)
	}
	if !strings.Contains(stderr, "5 executed") {
		t.Fatalf("first run must execute the 5 cells: %q", stderr)
	}
	storePath := filepath.Join(dir, "results.jsonl")
	if _, err := os.Stat(storePath); err != nil {
		t.Fatalf("result store missing: %v", err)
	}
	rendered, err := os.ReadFile(filepath.Join(dir, "table3.csv"))
	if err != nil || string(rendered) != out1 {
		t.Fatalf("rendered file must mirror stdout: err=%v", err)
	}

	// Resumed run: everything cached, byte-identical output.
	code, out2, stderr := runCLI(t, append(args, "-resume")...)
	if code != 0 {
		t.Fatalf("resume run: %d, stderr %q", code, stderr)
	}
	if !strings.Contains(stderr, "0 executed, 5 cached") {
		t.Fatalf("resume must serve all cells from cache: %q", stderr)
	}
	if out1 != out2 {
		t.Fatalf("cached output differs:\n%s\nvs\n%s", out1, out2)
	}

	// Without -resume the store is truncated and cells recompute.
	code, _, stderr = runCLI(t, args...)
	if code != 0 || !strings.Contains(stderr, "5 executed, 0 cached") {
		t.Fatalf("fresh run must recompute: code=%d stderr=%q", code, stderr)
	}
}

func TestGoldenUpdateAndCheckRoundTrip(t *testing.T) {
	if testing.Short() {
		t.Skip("golden suite runs 15 quick-scale flows")
	}
	path := filepath.Join(t.TempDir(), "golden.json")
	code, _, stderr := runCLI(t, "-update-golden", path)
	if code != 0 {
		t.Fatalf("update-golden: %d, stderr %q", code, stderr)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(raw), exp.GoldenRecipe) {
		t.Fatal("golden file must document its regeneration recipe")
	}

	code, _, stderr = runCLI(t, "-check", path)
	if code != 0 || !strings.Contains(stderr, "golden check passed") {
		t.Fatalf("check after update must pass: code=%d stderr=%q", code, stderr)
	}

	// An injected perturbation must fail the gate with exit 1.
	g, err := exp.LoadGolden(path)
	if err != nil {
		t.Fatal(err)
	}
	g.Cells[0].RatioCPD += 1e-12
	if err := exp.WriteGolden(path, g); err != nil {
		t.Fatal(err)
	}
	code, _, stderr = runCLI(t, "-check", path)
	if code != 1 || !strings.Contains(stderr, "golden check FAILED") {
		t.Fatalf("perturbed golden must fail: code=%d stderr=%q", code, stderr)
	}
	if !strings.Contains(stderr, "RatioCPD") {
		t.Fatalf("failure must name the mismatching metric: %q", stderr)
	}
}

// bootWorkers starts n in-process alsd equivalents and returns a -workers
// flag value addressing them.
func bootWorkers(t *testing.T, n int) string {
	t.Helper()
	var urls []string
	for i := 0; i < n; i++ {
		s := service.New(service.Options{Workers: 2, Logf: t.Logf})
		ts := httptest.NewServer(s.Handler())
		t.Cleanup(func() {
			ts.Close()
			s.Close()
		})
		urls = append(urls, ts.URL)
	}
	return strings.Join(urls, ",")
}

// TestWorkersFlagJSONByteIdenticalToLocal is the tentpole's contract at
// the CLI surface: dispatching the same sweep to a 2-worker fleet must
// render byte-identical machine-readable output to the local pool,
// because every cell is a pure function of its content hash.
func TestWorkersFlagJSONByteIdenticalToLocal(t *testing.T) {
	local, localOut, stderr := runCLI(t, cliMatrix("-exp", "table2", "-format", "json", "-jobs", "4")...)
	if local != 0 {
		t.Fatalf("local run: %d, stderr %q", local, stderr)
	}

	workers := bootWorkers(t, 2)
	dist, distOut, stderr := runCLI(t, cliMatrix("-exp", "table2", "-format", "json", "-workers", workers)...)
	if dist != 0 {
		t.Fatalf("distributed run: %d, stderr %q", dist, stderr)
	}
	if localOut != distOut {
		t.Fatalf("distributed JSON differs from local:\n%s\nvs\n%s", distOut, localOut)
	}

	// The local share composes: -jobs 2 alongside the fleet, same bytes.
	mixed, mixedOut, stderr := runCLI(t, cliMatrix("-exp", "table2", "-format", "json", "-workers", workers, "-jobs", "2")...)
	if mixed != 0 {
		t.Fatalf("mixed run: %d, stderr %q", mixed, stderr)
	}
	if mixedOut != localOut {
		t.Fatalf("mixed local+remote JSON differs from local:\n%s\nvs\n%s", mixedOut, localOut)
	}
}

// TestWorkersFlagComposesWithResume: a distributed run fills the -out
// store, and a resumed invocation serves every cell from cache without
// touching the (now gone) fleet.
func TestWorkersFlagComposesWithResume(t *testing.T) {
	dir := t.TempDir()
	workers := bootWorkers(t, 2)
	args := cliMatrix("-exp", "table3", "-format", "csv", "-out", dir)

	code, out1, stderr := runCLI(t, append(args, "-workers", workers)...)
	if code != 0 {
		t.Fatalf("distributed run: %d, stderr %q", code, stderr)
	}
	if !strings.Contains(stderr, "5 executed") {
		t.Fatalf("distributed run must execute the 5 cells: %q", stderr)
	}

	code, out2, stderr := runCLI(t, append(args, "-workers", "http://127.0.0.1:1", "-resume")...)
	if code != 0 {
		t.Fatalf("resume run: %d, stderr %q", code, stderr)
	}
	if !strings.Contains(stderr, "0 executed, 5 cached") {
		t.Fatalf("resume must serve all cells from the store: %q", stderr)
	}
	if out1 != out2 {
		t.Fatalf("resumed output differs:\n%s\nvs\n%s", out1, out2)
	}
}

func TestWorkersFlagEmptyURLListExits2(t *testing.T) {
	code, _, stderr := runCLI(t, "-exp", "table2", "-workers", " , ,")
	if code != 2 || !strings.Contains(stderr, "no worker URLs") {
		t.Fatalf("code=%d stderr=%q", code, stderr)
	}
}

// cheapGolden writes a 2-cell golden file from freshly computed tiny
// cells, optionally perturbing every cell so a -check must flag them all.
func cheapGolden(t *testing.T, path string, perturb bool) *exp.Golden {
	t.Helper()
	opts := exp.Opts{Seed: 3, Population: 6, Iterations: 3, Vectors: 512, Circuits: []string{"c880", "Max16"}}
	jobs := append(exp.Table2Jobs(opts)[:1], exp.Table3Jobs(opts)[:1]...)
	rs, _, err := exp.RunJobs(jobs, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	g, err := exp.NewGolden(jobs, rs)
	if err != nil {
		t.Fatal(err)
	}
	if perturb {
		for i := range g.Cells {
			g.Cells[i].RatioCPD += 1e-12
			g.Cells[i].Evaluations++
		}
	}
	if err := exp.WriteGolden(path, g); err != nil {
		t.Fatal(err)
	}
	return g
}

// TestCheckReportsEveryMismatchedCellWithGotWant: the gate must list all
// bad cells — each with per-field got/want lines — before exiting 1, not
// stop at the first.
func TestCheckReportsEveryMismatchedCellWithGotWant(t *testing.T) {
	path := filepath.Join(t.TempDir(), "golden.json")
	g := cheapGolden(t, path, true)

	code, _, stderr := runCLI(t, "-check", path)
	if code != 1 {
		t.Fatalf("perturbed golden: code=%d, want 1 (stderr %q)", code, stderr)
	}
	if !strings.Contains(stderr, "2 of 2 cell(s) mismatched") {
		t.Fatalf("summary must count every mismatched cell: %q", stderr)
	}
	for _, c := range g.Cells {
		if !strings.Contains(stderr, c.Job.Circuit) {
			t.Fatalf("stderr must name cell %s: %q", c.Job, stderr)
		}
	}
	for _, field := range []string{"RatioCPD", "Evaluations"} {
		if strings.Count(stderr, field) < 2 {
			t.Fatalf("each cell's %s mismatch must be listed: %q", field, stderr)
		}
	}
	if strings.Count(stderr, "got") < 4 || strings.Count(stderr, "want") < 4 {
		t.Fatalf("every field diff must carry got/want: %q", stderr)
	}
}

// TestCheckComposesWithWorkers: the golden gate runs its cells through
// the fleet and still passes exactly.
func TestCheckComposesWithWorkers(t *testing.T) {
	path := filepath.Join(t.TempDir(), "golden.json")
	cheapGolden(t, path, false)
	workers := bootWorkers(t, 2)
	code, _, stderr := runCLI(t, "-check", path, "-workers", workers)
	if code != 0 || !strings.Contains(stderr, "golden check passed") {
		t.Fatalf("distributed check must pass: code=%d stderr=%q", code, stderr)
	}
}

func TestCheckMissingGoldenFileFails(t *testing.T) {
	code, _, stderr := runCLI(t, "-check", filepath.Join(t.TempDir(), "absent.json"))
	if code != 1 || stderr == "" {
		t.Fatalf("absent golden file: code=%d stderr=%q", code, stderr)
	}
}

// TestInterruptedRunIsResumable simulates a SIGINT/SIGTERM delivery (main
// translates signals into context cancellation): the interrupted run must
// exit 1 with a -resume hint and leave the store in a state a -resume
// invocation completes from.
func TestInterruptedRunIsResumable(t *testing.T) {
	dir := t.TempDir()
	args := []string{"-exp", "table3", "-circuits", "Adder16",
		"-pop", "6", "-iters", "2", "-vectors", "256", "-out", dir}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	code, _, stderr := runCLIContext(t, ctx, args...)
	if code != 1 {
		t.Fatalf("interrupted run exit = %d, want 1 (stderr %q)", code, stderr)
	}
	if !strings.Contains(stderr, "-resume") || !strings.Contains(stderr, "interrupted") {
		t.Fatalf("interrupted stderr must hint at -resume: %q", stderr)
	}
	if _, err := os.Stat(filepath.Join(dir, "results.jsonl")); err != nil {
		t.Fatalf("interrupted run must leave the store behind: %v", err)
	}

	code, stdout, stderr := runCLI(t, append(args, "-resume")...)
	if code != 0 {
		t.Fatalf("resume exit = %d, stderr %q", code, stderr)
	}
	if !strings.Contains(stdout, "TABLE III") || !strings.Contains(stdout, "Adder16") {
		t.Fatalf("resume did not render the table: %q", stdout)
	}
	if !strings.Contains(stderr, "executed") {
		t.Fatalf("resume must report job stats: %q", stderr)
	}
}

// TestInterruptWithoutStoreExplainsDiscard covers the no -out case.
func TestInterruptWithoutStoreExplainsDiscard(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	code, _, stderr := runCLIContext(t, ctx, "-exp", "table3", "-circuits", "Adder16",
		"-pop", "6", "-iters", "2", "-vectors", "256")
	if code != 1 || !strings.Contains(stderr, "interrupted") {
		t.Fatalf("code=%d stderr=%q", code, stderr)
	}
}
