// Command experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	experiments -exp table1
//	experiments -exp table2 -scale paper
//	experiments -exp fig7 -circuits c880,Max16 -seed 7
//	experiments -exp all
//
// -scale quick (default) runs a reduced optimizer budget suitable for a
// laptop; -scale paper uses the paper's N=30, Imax=20 and a 1e5-class
// Monte-Carlo sample.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	als "repro"
	"repro/internal/exp"
)

func main() {
	var (
		expName  = flag.String("exp", "all", "experiment: table1|table2|table3|fig6|fig7|fig8|all")
		scale    = flag.String("scale", "quick", "optimizer budget: quick|paper")
		circuits = flag.String("circuits", "", "comma-separated benchmark subset (default: all)")
		seed     = flag.Int64("seed", 1, "random seed")
		compare  = flag.Bool("paper", true, "print paper reference values next to measurements")
		pop      = flag.Int("pop", 0, "override population size")
		iters    = flag.Int("iters", 0, "override iterations/rounds")
		vectors  = flag.Int("vectors", 0, "override Monte-Carlo vector count")
	)
	flag.Parse()

	opts := exp.Opts{Seed: *seed, Population: *pop, Iterations: *iters, Vectors: *vectors}
	switch *scale {
	case "quick":
		opts.Scale = als.ScaleQuick
	case "paper":
		opts.Scale = als.ScalePaper
	default:
		fmt.Fprintf(os.Stderr, "unknown scale %q\n", *scale)
		os.Exit(2)
	}
	if *circuits != "" {
		opts.Circuits = strings.Split(*circuits, ",")
	}

	run := func(name string) {
		if err := runExperiment(name, opts, *compare); err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", name, err)
			os.Exit(1)
		}
	}
	if *expName == "all" {
		for _, name := range []string{"table1", "table2", "table3", "fig6", "fig7", "fig8"} {
			run(name)
		}
		return
	}
	run(*expName)
}

func runExperiment(name string, opts exp.Opts, compare bool) error {
	switch name {
	case "table1":
		rows, err := exp.Table1()
		if err != nil {
			return err
		}
		fmt.Println("== TABLE I: benchmark statistics ==")
		fmt.Print(exp.RenderTable1(rows))

	case "table2":
		tab, err := exp.Table2(opts)
		if err != nil {
			return err
		}
		fmt.Println("== TABLE II: 5% ER constraint, random/control circuits ==")
		fmt.Print(exp.RenderCompare(tab))
		if compare {
			printPaperAverages(exp.PaperTable2)
		}

	case "table3":
		tab, err := exp.Table3(opts)
		if err != nil {
			return err
		}
		fmt.Println("== TABLE III: 2.44% NMED constraint, arithmetic circuits ==")
		fmt.Print(exp.RenderCompare(tab))
		if compare {
			printPaperAverages(exp.PaperTable3)
		}

	case "fig6":
		series, err := exp.Fig6(opts)
		if err != nil {
			return err
		}
		fmt.Print(exp.RenderWeights(series))

	case "fig7":
		er, nmed, err := exp.Fig7(opts)
		if err != nil {
			return err
		}
		fmt.Print(exp.RenderSweep("Fig. 7(a): Ratiocpd vs ER constraint (random/control)", "ER", er))
		fmt.Print(exp.RenderSweep("Fig. 7(b): Ratiocpd vs NMED constraint (arithmetic)", "NMED", nmed))

	case "fig8":
		er, nmed, err := exp.Fig8(opts)
		if err != nil {
			return err
		}
		fmt.Print(exp.RenderSweep("Fig. 8(a): Ratiocpd vs area constraint (5% ER)", "Areacon ratio", er))
		fmt.Print(exp.RenderSweep("Fig. 8(b): Ratiocpd vs area constraint (2.44% NMED)", "Areacon ratio", nmed))

	default:
		return fmt.Errorf("unknown experiment %q", name)
	}
	fmt.Println()
	return nil
}

func printPaperAverages(table map[string]map[string]exp.PaperCell) {
	avg := exp.PaperAverages(table)
	fmt.Printf("Paper averages:    ")
	for _, m := range als.AllMethods() {
		fmt.Printf(" | %8.4f %9s", avg[m.String()], "")
	}
	fmt.Println()
}
