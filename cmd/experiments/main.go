// Command experiments regenerates the paper's tables and figures through
// the job-graph orchestrator: every (experiment, circuit, method, seed,
// budget) cell is one content-hashed job, cells shared between experiments
// run once, and -out/-resume persist finished cells so an interrupted
// sweep picks up where it left off.
//
// Usage:
//
//	experiments -exp table1
//	experiments -exp table2 -scale paper
//	experiments -exp fig7 -circuits c880,Max16 -seed 7
//	experiments -exp all -jobs 8 -out results/ -format json
//	experiments -exp all -out results/ -resume        # after an interruption
//	experiments -check testdata/golden_quick.json     # CI regression gate
//	experiments -update-golden testdata/golden_quick.json
//
// With -workers the job graph is dispatched to a fleet of alsd daemons
// over HTTP instead of (or in addition to) the local pool:
//
//	experiments -exp all -workers http://h1:8080,http://h2:8080 -out results/
//	experiments -exp all -workers http://h1:8080 -jobs 4   # plus 4 local lanes
//	experiments -check testdata/golden_quick.json -workers http://h1:8080
//
// Cells are partitioned across workers by content hash, finished cells
// stream into the -out store as they complete (so -resume works exactly
// as in a local run), transient worker failures retry with capped
// backoff, and a dead worker's remaining cells fail over to the
// survivors. Because every cell is a pure function of its hash, a
// distributed run renders byte-identical json/csv output to a
// single-machine run.
//
// With -coord the sweep goes through the cluster coordinator (alscoord)
// instead of a hand-listed fleet: workers join by registering
// (`alsd -register`), the coordinator schedules by observed throughput,
// and this command is a thin client of the same job API — output stays
// byte-identical to -workers and local runs:
//
//	experiments -exp all -coord http://coord:9090 -out results/
//
// -scale quick (default) runs a reduced optimizer budget suitable for a
// laptop; -scale paper uses the paper's N=30, Imax=20 and a 1e5-class
// Monte-Carlo sample. Machine-readable formats (json, csv) omit wall-clock
// runtimes, so their bytes depend only on the job specs — identical for
// any -jobs value and any cache state.
//
// Exit codes: 0 success, 1 runtime error or golden mismatch, 2 usage error.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"slices"
	"strings"
	"syscall"

	als "repro"
	"repro/internal/dispatch"
	"repro/internal/exp"
	"repro/internal/store"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

func main() {
	// SIGINT/SIGTERM cancel the context; every in-flight flow stops at
	// its next iteration boundary, the store (flushed per finished cell)
	// is closed on the way out, and the run exits 1 with a -resume hint —
	// so an interrupted sweep is always resumable.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	os.Exit(run(ctx, os.Args[1:], os.Stdout, os.Stderr))
}

func run(ctx context.Context, args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		expName  = fs.String("exp", "all", "experiment: "+strings.Join(exp.Experiments(), "|")+"|all")
		scale    = fs.String("scale", "quick", "optimizer budget: quick|paper")
		circuits = fs.String("circuits", "", "comma-separated benchmark subset (default: all)")
		seed     = fs.Int64("seed", 1, "random seed")
		paper    = fs.Bool("paper", true, "print paper reference values next to measurements (text format)")
		pop      = fs.Int("pop", 0, "override population size")
		iters    = fs.Int("iters", 0, "override iterations/rounds")
		vectors  = fs.Int("vectors", 0, "override Monte-Carlo vector count")
		jobs     = fs.Int("jobs", 0, "concurrent experiment cells (0 = GOMAXPROCS); with -workers, the local share (0 = remote only)")
		workers  = fs.String("workers", "", "comma-separated alsd worker URLs; distribute cells across them by content hash (legacy static fleet)")
		coordURL = fs.String("coord", "", "alscoord base URL; dispatch cells through the cluster coordinator (workers join by registering)")
		outDir   = fs.String("out", "", "directory for the persistent result store and rendered reports")
		backend  = fs.String("store-backend", "auto", "result-store backend for -out: auto, jsonl or embedded (see docs/STORAGE.md)")
		resume   = fs.Bool("resume", false, "reuse finished cells from the -out result store")
		format   = fs.String("format", "text", "output format: text|json|csv")
		check    = fs.String("check", "", "diff freshly computed metrics against this golden file and exit")
		update   = fs.String("update-golden", "", "recompute the golden suite, write it to this path and exit")
		metrics  = fs.String("metrics-addr", "", "serve Prometheus /metrics on this address for the duration of the run (e.g. 127.0.0.1:9090); empty disables")
		traceOut = fs.String("trace-out", "", "enable tracing and write the coordinator's span export (JSONL, the cmd/tracecat input) to this file when the run ends")
		traceBuf = fs.Int("trace-buf", trace.DefaultCapacity, "span ring-buffer capacity while tracing")
	)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0
		}
		return 2
	}

	opts := exp.Opts{Seed: *seed, Population: *pop, Iterations: *iters, Vectors: *vectors}
	sc, err := als.ParseScale(*scale)
	if err != nil {
		fmt.Fprintf(stderr, "unknown scale %q (valid: quick, paper)\n", *scale)
		return 2
	}
	opts.Scale = sc
	if *circuits != "" {
		opts.Circuits = strings.Split(*circuits, ",")
		// A typo'd name would otherwise just silently shrink the matrix
		// (circuitSet intersects with the experiment's kind set). The name
		// list is enough — building the netlists is the job runner's work.
		for _, name := range opts.Circuits {
			if !slices.Contains(als.BenchmarkNames(), name) {
				fmt.Fprintf(stderr, "unknown benchmark %q (valid: %s)\n",
					name, strings.Join(als.BenchmarkNames(), ", "))
				return 2
			}
		}
	}

	// -trace-out records the whole invocation as one trace: a root span
	// here, the dispatch sweep and its per-request spans under it (remote
	// workers continue the same trace ID via traceparent), and the local
	// lanes' job/generation spans. The export is written on every exit
	// path so an interrupted run still leaves its timeline behind.
	var (
		tracer   *trace.Tracer
		rootSpan *trace.Span
	)
	if *traceOut != "" {
		tracer = trace.New(trace.Options{Service: "experiments", Capacity: *traceBuf})
		rootSpan = tracer.StartRoot("experiments.run")
		rootSpan.SetAttr("exp", *expName)
		rootSpan.SetAttr("scale", *scale)
		ctx = trace.ContextWith(ctx, rootSpan)
		fmt.Fprintf(stderr, "trace %s\n", rootSpan.TraceID())
		defer func() {
			rootSpan.End()
			if err := writeTrace(*traceOut, tracer); err != nil {
				fmt.Fprintf(stderr, "trace export: %v\n", err)
				return
			}
			fmt.Fprintf(stderr, "trace export: %s (render: tracecat %s)\n", *traceOut, *traceOut)
		}()
	}

	// -metrics-addr makes a long sweep observable from outside: a tiny
	// HTTP server exposes the dispatch lane counters plus the -out store
	// traffic for the run's duration. Registered before the runner is
	// built so both local and distributed runs share the registry.
	var (
		reg *telemetry.Registry
		dm  *dispatch.Metrics
	)
	if *metrics != "" {
		reg = telemetry.NewRegistry()
		dm = dispatch.NewMetrics(reg)
		mux := http.NewServeMux()
		mux.Handle("GET /metrics", reg.Handler())
		mux.Handle("GET /debug/traces", tracer.Handler())
		ms := &http.Server{Addr: *metrics, Handler: mux}
		go func() {
			if err := ms.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				fmt.Fprintf(stderr, "metrics server: %v\n", err)
			}
		}()
		defer ms.Close()
		fmt.Fprintf(stderr, "metrics on http://%s/metrics\n", *metrics)
	}

	if *coordURL != "" && *workers != "" {
		fmt.Fprintln(stderr, "-coord and -workers are mutually exclusive (the coordinator owns the fleet)")
		return 2
	}
	workerList := *workers
	if *coordURL != "" {
		// The coordinator serves the same worker job API as any alsd, so
		// coordinator mode is the legacy client pointed at one URL: batch
		// submit, poll by hash, identical bytes out.
		workerList = *coordURL
	}
	runner, err := newJobRunner(workerList, *jobs, dm, tracer, stderr)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}

	if *update != "" {
		return updateGolden(ctx, *update, *seed, runner, stderr)
	}
	if *check != "" {
		return checkGolden(ctx, *check, runner, stderr)
	}

	names, err := expandExperiments(*expName)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	switch *format {
	case "text", "json", "csv":
	default:
		fmt.Fprintf(stderr, "unknown format %q (valid: text, json, csv)\n", *format)
		return 2
	}
	if *resume && *outDir == "" {
		fmt.Fprintln(stderr, "-resume requires -out (there is no store to resume from)")
		return 2
	}

	var st *store.Store
	if *outDir != "" {
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		path := filepath.Join(*outDir, "results.jsonl")
		if !*resume {
			// A fresh (non-resume) run must not serve stale cells, and must
			// not leave rendered reports from an earlier run (possibly with
			// different opts) lying next to this run's output.
			stale := []string{path}
			for _, n := range exp.Experiments() {
				for _, ext := range []string{"txt", "json", "csv"} {
					stale = append(stale, filepath.Join(*outDir, n+"."+ext))
				}
			}
			for _, f := range stale {
				if err := os.Remove(f); err != nil && !os.IsNotExist(err) {
					fmt.Fprintln(stderr, err)
					return 1
				}
			}
		}
		st, err = store.OpenKind(*backend, path)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		defer st.Close()
		if reg != nil {
			st.Instrument(
				reg.Counter("als_store_puts_total", "Records appended to the persistent result store."),
				reg.Counter("als_store_gets_total", "Lookups against the persistent result store."),
				reg.Counter("als_store_hits_total", "Persistent-store lookups that found a record."))
		}
		if n := st.Corrupt(); n > 0 {
			fmt.Fprintf(stderr, "result store: skipped %d corrupt line(s), kept %d finished cell(s)\n", n, st.Len())
		}
	}

	var jobList []exp.Job
	for _, name := range names {
		js, err := exp.JobsFor(name, opts)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
		jobList = append(jobList, js...)
	}
	rs, stats, err := runner(ctx, jobList, st)
	if err != nil {
		if errors.Is(err, context.Canceled) {
			if st != nil {
				fmt.Fprintf(stderr, "interrupted: %d finished cell(s) flushed to %s; re-run with -resume to continue\n",
					st.Len(), st.Path())
			} else {
				fmt.Fprintln(stderr, "interrupted (no -out store; finished work was discarded)")
			}
			return 1
		}
		fmt.Fprintln(stderr, err)
		return 1
	}
	fmt.Fprintf(stderr, "jobs: %d executed, %d cached, %d deduplicated\n",
		stats.Executed, stats.Cached, stats.Deduped)

	for _, name := range names {
		text, err := renderExperiment(name, opts, rs, *format, *paper)
		if err != nil {
			fmt.Fprintf(stderr, "%s: %v\n", name, err)
			return 1
		}
		fmt.Fprint(stdout, text)
		if *outDir != "" {
			file := filepath.Join(*outDir, name+"."+formatExt(*format))
			if err := os.WriteFile(file, []byte(text), 0o644); err != nil {
				fmt.Fprintln(stderr, err)
				return 1
			}
		}
	}
	return 0
}

// jobRunner abstracts where cells execute: the local worker pool, or a
// distributed fleet through the dispatch coordinator. Either way the
// ResultSet is keyed by content hash and carries identical deterministic
// metrics, so everything downstream (rendering, golden checks, stores) is
// oblivious to the choice.
type jobRunner func(ctx context.Context, jobs []exp.Job, st *store.Store) (exp.ResultSet, exp.RunStats, error)

// newJobRunner builds the runner for this invocation. Without -workers,
// cells run on a local pool of `localJobs` goroutines; with -workers they
// are partitioned across the fleet, and localJobs > 0 adds that many
// local lanes (the coordinator machine's share).
func newJobRunner(workersCSV string, localJobs int, dm *dispatch.Metrics, tracer *trace.Tracer, stderr io.Writer) (jobRunner, error) {
	if workersCSV == "" {
		return func(ctx context.Context, jobs []exp.Job, st *store.Store) (exp.ResultSet, exp.RunStats, error) {
			return exp.RunJobsContext(ctx, jobs, localJobs, st)
		}, nil
	}
	var urls []string
	for _, u := range strings.Split(workersCSV, ",") {
		u = strings.TrimSpace(u)
		if u == "" {
			continue
		}
		if !strings.Contains(u, "://") {
			u = "http://" + u
		}
		urls = append(urls, u)
	}
	if len(urls) == 0 {
		return nil, errors.New("-workers given but no worker URLs parsed")
	}
	return func(ctx context.Context, jobs []exp.Job, st *store.Store) (exp.ResultSet, exp.RunStats, error) {
		rs, dstats, err := dispatch.Run(ctx, jobs, dispatch.Options{
			Workers:   urls,
			LocalJobs: localJobs,
			Store:     st,
			Metrics:   dm,
			Tracer:    tracer,
			Logf: func(format string, args ...any) {
				fmt.Fprintf(stderr, format+"\n", args...)
			},
		})
		return rs, dstats.RunStats, err
	}, nil
}

// writeTrace dumps the tracer's buffered spans as JSONL.
func writeTrace(path string, tracer *trace.Tracer) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := tracer.WriteJSONL(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// expandExperiments resolves the -exp flag, listing the valid names in the
// error for an unknown value.
func expandExperiments(name string) ([]string, error) {
	if name == "all" {
		return exp.Experiments(), nil
	}
	for _, n := range exp.Experiments() {
		if n == name {
			return []string{name}, nil
		}
	}
	return nil, fmt.Errorf("unknown experiment %q (valid: %s, all)",
		name, strings.Join(exp.Experiments(), ", "))
}

func formatExt(format string) string {
	if format == "text" {
		return "txt"
	}
	return format
}

// renderExperiment renders one experiment from the result set in the
// requested format.
func renderExperiment(name string, opts exp.Opts, rs exp.ResultSet, format string, paper bool) (string, error) {
	switch format {
	case "json":
		doc, err := exp.JSONReport(name, opts, rs)
		if err != nil {
			return "", err
		}
		return exp.MarshalReport(doc)
	case "csv":
		return exp.CSVReport(name, opts, rs)
	}

	var b strings.Builder
	switch name {
	case "table1":
		rows, err := exp.Table1()
		if err != nil {
			return "", err
		}
		b.WriteString("== TABLE I: benchmark statistics ==\n")
		b.WriteString(exp.RenderTable1(rows))

	case "table2":
		tab, err := exp.Table2From(opts, rs)
		if err != nil {
			return "", err
		}
		b.WriteString("== TABLE II: 5% ER constraint, random/control circuits ==\n")
		b.WriteString(exp.RenderCompare(tab))
		if paper {
			b.WriteString(paperAverages(exp.PaperTable2))
		}

	case "table3":
		tab, err := exp.Table3From(opts, rs)
		if err != nil {
			return "", err
		}
		b.WriteString("== TABLE III: 2.44% NMED constraint, arithmetic circuits ==\n")
		b.WriteString(exp.RenderCompare(tab))
		if paper {
			b.WriteString(paperAverages(exp.PaperTable3))
		}

	case "fig6":
		series, err := exp.Fig6From(opts, rs)
		if err != nil {
			return "", err
		}
		b.WriteString(exp.RenderWeights(series))

	case "fig7":
		er, nmed, err := exp.Fig7From(opts, rs)
		if err != nil {
			return "", err
		}
		b.WriteString(exp.RenderSweep("Fig. 7(a): Ratiocpd vs ER constraint (random/control)", "ER", er))
		b.WriteString(exp.RenderSweep("Fig. 7(b): Ratiocpd vs NMED constraint (arithmetic)", "NMED", nmed))

	case "fig8":
		er, nmed, err := exp.Fig8From(opts, rs)
		if err != nil {
			return "", err
		}
		b.WriteString(exp.RenderSweep("Fig. 8(a): Ratiocpd vs area constraint (5% ER)", "Areacon ratio", er))
		b.WriteString(exp.RenderSweep("Fig. 8(b): Ratiocpd vs area constraint (2.44% NMED)", "Areacon ratio", nmed))

	default:
		return "", fmt.Errorf("unknown experiment %q", name)
	}
	b.WriteString("\n")
	return b.String(), nil
}

func paperAverages(table map[string]map[string]exp.PaperCell) string {
	avg := exp.PaperAverages(table)
	var b strings.Builder
	fmt.Fprintf(&b, "Paper averages:    ")
	for _, m := range als.AllMethods() {
		fmt.Fprintf(&b, " | %8.4f %9s", avg[m.String()], "")
	}
	b.WriteString("\n")
	return b.String()
}

// checkGolden is the CI regression gate: recompute the golden file's cells
// and require exact metric equality. Every mismatched cell is reported —
// with a got/want line per differing field — before the nonzero exit, so
// one CI run shows the full blast radius of a metrics change.
func checkGolden(ctx context.Context, path string, runner jobRunner, stderr io.Writer) int {
	g, err := exp.LoadGolden(path)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	rs, stats, err := runner(ctx, g.Jobs(), nil)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	if diffs := exp.DiffGolden(g, rs); len(diffs) > 0 {
		fmt.Fprintf(stderr, "golden check FAILED against %s: %d of %d cell(s) mismatched\n",
			path, len(diffs), len(g.Cells))
		for _, d := range diffs {
			fmt.Fprintf(stderr, "  %s\n", d.Job)
			if d.Missing {
				fmt.Fprintf(stderr, "    missing result\n")
				continue
			}
			for _, f := range d.Fields {
				fmt.Fprintf(stderr, "    %-12s got %-24s want %s\n", f.Field, f.Got, f.Want)
			}
		}
		fmt.Fprintf(stderr, "after an intentional metrics change, regenerate with: %s\n", exp.GoldenRecipe)
		return 1
	}
	fmt.Fprintf(stderr, "golden check passed: %d cell(s) match %s exactly (%d executed)\n",
		len(g.Cells), path, stats.Executed)
	return 0
}

// updateGolden recomputes the quick-scale golden suite and rewrites the
// committed reference.
func updateGolden(ctx context.Context, path string, seed int64, runner jobRunner, stderr io.Writer) int {
	jobs := exp.GoldenJobs(seed)
	rs, _, err := runner(ctx, jobs, nil)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	g, err := exp.NewGolden(jobs, rs)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	if err := exp.WriteGolden(path, g); err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	fmt.Fprintf(stderr, "wrote %d golden cell(s) to %s\n", len(g.Cells), path)
	return 0
}
